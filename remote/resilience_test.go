package remote_test

// Behavioral tests of the resilience tier: the client's Retry-After
// obedience and per-attempt deadlines, the coordinator's circuit breaker,
// hedged point queries, and the fan-out deadline's degraded fallback. All
// fault schedules are driven by test-controlled handlers or the chaos
// harness, so every scenario is reproducible.

import (
	"errors"
	"iter"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"v6class"
	"v6class/remote"
	"v6class/remote/chaos"
	"v6class/serve"
)

const resStudyDays = 10

// resLogs is a minimal deterministic census: six addresses in two /64s,
// everything active every day — just enough state for every endpoint to
// answer.
func resLogs() []v6class.DayLog {
	addrs := []v6class.Addr{
		v6class.MustParseAddr("2001:db8::1"),
		v6class.MustParseAddr("2001:db8::2"),
		v6class.MustParseAddr("2001:db8::3"),
		v6class.MustParseAddr("2001:db8:0:1::1"),
		v6class.MustParseAddr("2001:db8:0:1::2"),
		v6class.MustParseAddr("2001:db8:0:1::3"),
	}
	logs := make([]v6class.DayLog, resStudyDays)
	for day := range logs {
		logs[day].Day = day
		for _, a := range addrs {
			logs[day].Records = append(logs[day].Records, v6class.Record{Addr: a, Hits: 2})
		}
	}
	return logs
}

// resEngine builds and freezes a local engine over resLogs.
func resEngine(t testing.TB) v6class.Engine {
	t.Helper()
	eng, err := v6class.New(v6class.WithStudyDays(resStudyDays), v6class.WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDays(resLogs()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// resHandler publishes eng as a serve handler under snapshot "census".
func resHandler(t testing.TB, eng v6class.Engine) http.Handler {
	t.Helper()
	s := serve.New(serve.Options{})
	s.Install("census", "", eng)
	return s.Handler()
}

// fastBackoff keeps retry delays negligible where the test does not
// measure them.
func fastBackoff() remote.Backoff {
	return remote.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
}

// TestRetryAfterHonored proves the client is not a tight loop: a server
// shedding with 429 and Retry-After: 1 sees the retries spaced at least
// the hinted second apart, even though the configured backoff base is one
// millisecond.
func TestRetryAfterHonored(t *testing.T) {
	real := resHandler(t, resEngine(t))
	var mu sync.Mutex
	var times []time.Time
	sheds := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		shed := sheds > 0
		if shed {
			sheds--
		}
		mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer srv.Close()

	// Base 1ms keeps the jittered component negligible; Max stays at its
	// 5s default because Max also clamps the Retry-After floor.
	if _, err := remote.Dial(srv.URL, remote.WithSnapshot("census"),
		remote.WithRetries(4), remote.WithBackoff(remote.Backoff{Base: time.Millisecond})); err != nil {
		t.Fatalf("Dial through 429s: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 3 {
		t.Fatalf("server saw %d requests, want 3 (two sheds, one success)", len(times))
	}
	for i := 1; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap < 900*time.Millisecond {
			t.Fatalf("retry %d came %v after the 429, want >= ~1s (Retry-After ignored?)", i, gap)
		}
	}
}

// TestAttemptTimeoutFailsFast proves a hung backend costs one attempt
// budget, not an unbounded wait: with a 50ms per-attempt deadline the
// whole dial against a never-answering server resolves in well under the
// 30s default whole-call timeout, classified unavailable.
func TestAttemptTimeoutFailsFast(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()

	start := time.Now()
	_, err := remote.Dial(srv.URL,
		remote.WithAttemptTimeout(50*time.Millisecond),
		remote.WithRetries(2),
		remote.WithBackoff(fastBackoff()))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial against a hung server succeeded")
	}
	if !errors.Is(err, v6class.ErrUnavailable) {
		t.Fatalf("error does not wrap ErrUnavailable: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("three 50ms attempts took %v — per-attempt deadline not applied", elapsed)
	}
}

// flakyBackend wraps a healthy serve handler with a switchable 503 mode
// and a request counter, so a test can break one cluster partition on
// demand and count exactly how often it is asked.
type flakyBackend struct {
	h    http.Handler
	fail atomic.Bool
	hits atomic.Int64
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.hits.Add(1)
	if f.fail.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	f.h.ServeHTTP(w, r)
}

// dialBackend dials a handler with single-attempt fast-fail options, so
// one coordinator scatter costs exactly one request per backend.
func dialBackend(t *testing.T, h http.Handler) *remote.Engine {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"),
		remote.WithRetries(0), remote.WithBackoff(fastBackoff()))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return re
}

// TestBreakerStopsHammering proves the coordinator's circuit breaker: a
// backend failing consecutively stops receiving requests at all after the
// threshold, queries fail naming it, and a half-open probe after the
// cooldown restores it to service once healthy.
func TestBreakerStopsHammering(t *testing.T) {
	eng := resEngine(t)
	flaky := &flakyBackend{h: resHandler(t, eng)}
	backends := []v6class.Engine{
		dialBackend(t, resHandler(t, eng)),
		dialBackend(t, resHandler(t, eng)),
		dialBackend(t, flaky),
	}
	coord, err := remote.NewCoordinator(backends, nil,
		remote.WithBreaker(remote.BreakerPolicy{Threshold: 2, Cooldown: 200 * time.Millisecond}))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	flaky.fail.Store(true)
	// Two scatters feed the breaker its threshold of failures.
	for i := 0; i < 2; i++ {
		_, err := coord.NumKeys(v6class.Addresses)
		if !errors.Is(err, v6class.ErrUnavailable) {
			t.Fatalf("scatter %d against a failing backend: %v, want ErrUnavailable", i, err)
		}
		if !strings.Contains(err.Error(), "backend 2") {
			t.Fatalf("error does not name the failing backend: %v", err)
		}
	}
	// The circuit is open: further scatters fail instantly without a
	// single request reaching the broken backend.
	before := flaky.hits.Load()
	for i := 0; i < 3; i++ {
		if _, err := coord.NumKeys(v6class.Addresses); !errors.Is(err, v6class.ErrUnavailable) {
			t.Fatalf("open-circuit scatter %d: %v, want ErrUnavailable", i, err)
		}
	}
	if got := flaky.hits.Load(); got != before {
		t.Fatalf("open circuit let %d request(s) through to the broken backend", got-before)
	}

	// Recovery: heal the backend, wait out the cooldown, and the half-open
	// probe closes the circuit again.
	flaky.fail.Store(false)
	time.Sleep(250 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, err := coord.NumKeys(v6class.Addresses); err != nil {
			t.Fatalf("scatter %d after recovery: %v", i, err)
		}
	}
}

// TestHedgedLookupTamesTail proves WithHedge: when the owning backend
// sits on the first reply, a duplicate request races it and the fast
// answer wins well before the slow one lands.
func TestHedgedLookupTamesTail(t *testing.T) {
	real := resHandler(t, resEngine(t))
	var lookups atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "lookup") {
			if lookups.Add(1) == 1 {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(2 * time.Second):
				}
			}
		}
		real.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	coord, err := remote.NewCoordinator([]v6class.Engine{re}, nil,
		remote.WithHedge(30*time.Millisecond))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	start := time.Now()
	if _, err := coord.LookupAddr(v6class.MustParseAddr("2001:db8::1")); err != nil {
		t.Fatalf("hedged LookupAddr: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged lookup took %v — the hedge never fired", elapsed)
	}
	if n := lookups.Load(); n < 2 {
		t.Fatalf("server saw %d lookup request(s), want >= 2 (primary + hedge)", n)
	}
}

// stuckEngine wraps a healthy local engine but blocks NumKeys until
// released — a backend that accepted the connection and then went silent.
type stuckEngine struct {
	v6class.Engine
	release chan struct{}
}

func (s *stuckEngine) NumKeys(pop v6class.Population) (int, error) {
	<-s.release
	return s.Engine.NumKeys(pop)
}

// TestFanoutDeadlineDegrades proves the fan-out deadline: a backend that
// never answers is cut off at the deadline and, in partial mode, the merge
// proceeds over the answering majority with an exact Coverage report. The
// default strict mode fails instead.
func TestFanoutDeadlineDegrades(t *testing.T) {
	eng := resEngine(t)
	single, err := eng.NumKeys(v6class.Addresses)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	mk := func(opts ...remote.CoordinatorOption) *remote.Coordinator {
		backends := []v6class.Engine{eng, &stuckEngine{Engine: resEngine(t), release: release}, resEngine(t)}
		c, err := remote.NewCoordinator(backends, nil,
			append([]remote.CoordinatorOption{remote.WithFanoutTimeout(60 * time.Millisecond)}, opts...)...)
		if err != nil {
			t.Fatalf("NewCoordinator: %v", err)
		}
		return c
	}

	// Strict mode: the hung backend fails the query at the deadline.
	if _, err := mk().NumKeys(v6class.Addresses); !errors.Is(err, v6class.ErrUnavailable) {
		t.Fatalf("strict fan-out past a hung backend: %v, want ErrUnavailable", err)
	}

	// Partial mode: the two answering backends carry the merge, and the
	// degradation annotation reports exactly who is missing.
	got, err := mk(remote.WithPartialResults()).NumKeys(v6class.Addresses)
	if !errors.Is(err, v6class.ErrDegraded) {
		t.Fatalf("degraded fan-out: %v, want ErrDegraded", err)
	}
	if got != 2*single {
		t.Fatalf("degraded NumKeys = %d, want %d (two answering backends)", got, 2*single)
	}
	var de *remote.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("degraded error is not a *DegradedError: %v", err)
	}
	cov := de.Coverage
	if cov.Backends != 3 || cov.Answered != 2 || len(cov.Failed) != 1 || cov.Failed[0].Index != 1 {
		t.Fatalf("Coverage = %+v, want 2/3 answered missing backend 1", cov)
	}
	if !errors.Is(cov.Failed[0].Err, v6class.ErrUnavailable) {
		t.Fatalf("missing backend's error %v does not wrap ErrUnavailable", cov.Failed[0].Err)
	}
}

// drain exhausts an iterator, counting.
func drain[T any](seq iter.Seq[T]) int {
	n := 0
	for range seq {
		n++
	}
	return n
}

// TestChaoticRemoteRecovers drives a single remote engine through the
// chaos transport — 5xx bursts, connection resets, truncated bodies, all
// seeded — with a fault budget, and proves the retry tier answers every
// query correctly once the faults dry up.
func TestChaoticRemoteRecovers(t *testing.T) {
	eng := resEngine(t)
	srv := httptest.NewServer(resHandler(t, eng))
	defer srv.Close()
	in := chaos.NewInjector(chaos.Policy{
		Seed:       11,
		FailRate:   0.25,
		ResetRate:  0.10,
		RetryAfter: 0, // jittered backoff only; Retry-After has its own test
		MaxFaults:  40,
	})
	hc := &http.Client{Transport: &chaos.Transport{Injector: in}}
	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"),
		remote.WithHTTPClient(hc), remote.WithRetries(8),
		remote.WithBackoff(fastBackoff()), remote.WithPageSize(3))
	if err != nil {
		t.Fatalf("Dial through chaos: %v", err)
	}

	wantKeys, err := eng.NumKeys(v6class.Addresses)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		n, err := re.NumKeys(v6class.Addresses)
		if err != nil {
			t.Fatalf("round %d NumKeys through chaos: %v", round, err)
		}
		if n != wantKeys {
			t.Fatalf("round %d NumKeys = %d, want %d", round, n, wantKeys)
		}
		keys, err := re.KeysOrdered(v6class.Addresses)
		if err != nil {
			t.Fatalf("round %d KeysOrdered through chaos: %v", round, err)
		}
		if got := drain(keys); got != wantKeys {
			t.Fatalf("round %d enumerated %d keys, want %d", round, got, wantKeys)
		}
	}
	st := in.Stats()
	if st.Faults == 0 {
		t.Fatal("the chaos transport injected no faults — the test proved nothing")
	}
	t.Logf("chaos: %d faults across %d requests, all queries correct", st.Faults, st.Requests)
}

// gatedKeys parks KeysOrdered until released, so a test can hold a serve
// instance's sweep admission slot open from inside the engine.
type gatedKeys struct {
	v6class.Engine
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedKeys) KeysOrdered(pop v6class.Population, days ...int) (iter.Seq[v6class.Prefix], error) {
	g.entered <- struct{}{}
	<-g.gate
	return g.Engine.KeysOrdered(pop, days...)
}

// TestServeShedDrivesClientBackoff is the 429 loop closed end to end: a
// serve instance with one sweep slot sheds the client's enumeration with
// Retry-After: 1, the client's backoff waits the hinted second — no tight
// loop, proven by request timestamps — and the retry succeeds once the
// occupying sweep drains.
func TestServeShedDrivesClientBackoff(t *testing.T) {
	g := &gatedKeys{Engine: resEngine(t), entered: make(chan struct{}, 1), gate: make(chan struct{})}
	s := serve.New(serve.Options{SweepConcurrency: 1})
	s.Install("census", "", g)

	var mu sync.Mutex
	var sweepTimes []time.Time
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/keys") {
			mu.Lock()
			sweepTimes = append(sweepTimes, time.Now())
			mu.Unlock()
		}
		s.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Park one sweep inside the engine, occupying the only slot.
	occupied := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/keys?pop=addrs&snap=census")
		if err != nil {
			occupied <- -1
			return
		}
		resp.Body.Close()
		occupied <- resp.StatusCode
	}()
	<-g.entered
	time.AfterFunc(300*time.Millisecond, func() { close(g.gate) })

	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"),
		remote.WithRetries(5), remote.WithBackoff(remote.Backoff{Base: time.Millisecond}))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	seq, err := re.KeysOrdered(v6class.Addresses)
	if err != nil {
		t.Fatalf("KeysOrdered through saturation: %v", err)
	}
	if got := drain(seq); got != 6 {
		t.Fatalf("enumerated %d keys, want 6", got)
	}
	if code := <-occupied; code != http.StatusOK {
		t.Fatalf("occupying sweep finished with %d, want 200", code)
	}

	mu.Lock()
	defer mu.Unlock()
	// sweepTimes: the parked request, then the client's shed attempt and
	// its retries. The gap after the shed must be at least the hinted
	// second — millisecond backoff base alone would retry instantly.
	if len(sweepTimes) < 3 {
		t.Fatalf("saw %d sweep requests, want the parked one plus a shed attempt and a retry", len(sweepTimes))
	}
	for i := 2; i < len(sweepTimes); i++ {
		if gap := sweepTimes[i].Sub(sweepTimes[i-1]); gap < 900*time.Millisecond {
			t.Fatalf("client retried %v after the 429, want >= ~1s (Retry-After ignored)", gap)
		}
	}
}

// BenchmarkResilienceFaultyLookup measures a point lookup through a
// fault-injecting transport (25% 503s) with millisecond backoff: the
// price of the retry tier when the cluster is genuinely unhealthy.
func BenchmarkResilienceFaultyLookup(b *testing.B) {
	eng := resEngine(b)
	s := serve.New(serve.Options{})
	s.Install("census", "", eng)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	in := chaos.NewInjector(chaos.Policy{Seed: 7, FailRate: 0.25})
	hc := &http.Client{Transport: &chaos.Transport{Injector: in}}
	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"),
		remote.WithHTTPClient(hc), remote.WithRetries(6),
		remote.WithBackoff(remote.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}))
	if err != nil {
		b.Fatal(err)
	}
	a := v6class.MustParseAddr("2001:db8::1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := re.LookupAddr(a); err != nil {
			b.Fatal(err)
		}
	}
	if st := in.Stats(); st.Faults == 0 && b.N > 20 {
		b.Fatalf("no faults injected across %d requests", st.Requests)
	}
}
