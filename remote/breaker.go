package remote

import (
	"sync"
	"time"
)

// Per-backend health tracking for the coordinator: a consecutive-failure
// circuit breaker. A backend that keeps failing availability-wise stops
// being asked at all — queries fail (or degrade) instantly instead of
// burning a full retry budget per scatter — until a cooldown passes and a
// single half-open probe is allowed through to test recovery.

// BreakerPolicy configures the coordinator's per-backend circuit breaker.
type BreakerPolicy struct {
	// Threshold is the consecutive availability-failure count that opens
	// the circuit (default 5; negative disables the breaker entirely).
	Threshold int
	// Cooldown is how long an open circuit rejects requests before
	// allowing one half-open probe (default 10s).
	Cooldown time.Duration
}

func (p BreakerPolicy) norm() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 10 * time.Second
	}
	return p
}

// The three breaker states. Closed passes everything; open rejects
// everything until the cooldown elapses; half-open admits exactly one
// probe whose verdict decides between closed (success) and another full
// open period (failure).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	policy BreakerPolicy

	mu       sync.Mutex
	state    int
	failures int // consecutive availability failures
	openedAt time.Time
}

func newBreaker(p BreakerPolicy) *breaker {
	return &breaker{policy: p.norm()}
}

// allow reports whether a request may proceed. An open breaker past its
// cooldown transitions to half-open and admits the caller as the probe;
// while a probe is in flight every other caller is rejected.
func (b *breaker) allow() bool {
	if b.policy.Threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.policy.Cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe is already in flight
		return false
	}
}

// record feeds one availability verdict back. Only availability failures
// (errors wrapping v6class.ErrUnavailable) should count as !ok: a backend
// that answers "bad parameter" is alive.
func (b *breaker) record(ok bool) {
	if b.policy.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.policy.Threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}
