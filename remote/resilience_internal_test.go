package remote

import (
	"errors"
	"math"
	"testing"
	"time"

	"v6class"
)

// The backoff policy's contract: full jitter inside an exponentially
// growing, capped ceiling, with Retry-After as an authoritative floor that
// still cannot exceed the cap.

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2}
	for attempt := 0; attempt < 12; attempt++ {
		ceil := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
		if ceil > float64(b.Max) {
			ceil = float64(b.Max)
		}
		for trial := 0; trial < 200; trial++ {
			d := b.delay(attempt, 0)
			if d < 0 || float64(d) >= ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, time.Duration(ceil))
			}
		}
	}
}

func TestBackoffRetryAfterFloor(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2}
	// A server hint above the jitter ceiling is authoritative: the delay
	// is exactly the hint.
	for trial := 0; trial < 50; trial++ {
		if d := b.delay(0, 2*time.Second); d != 2*time.Second {
			t.Fatalf("delay with 2s Retry-After = %v, want exactly 2s", d)
		}
	}
	// But a confused server cannot park the client past Max.
	if d := b.delay(0, time.Hour); d != b.Max {
		t.Fatalf("delay with 1h Retry-After = %v, want clamped to %v", d, b.Max)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if d := b.delay(0, 0); d >= 100*time.Millisecond {
		t.Fatalf("zero-value first delay %v, want < default base 100ms", d)
	}
	if d := b.delay(100, 0); d >= 5*time.Second {
		t.Fatalf("zero-value late delay %v, want < default max 5s", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 1 ", time.Second},
		{"-5", 0},
		{"junk", 0},
		{time.Now().Add(-time.Hour).UTC().Format("Mon, 02 Jan 2006 15:04:05 GMT"), 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// An HTTP date in the future yields roughly the wait until it.
	future := time.Now().Add(90 * time.Second).UTC().Format("Mon, 02 Jan 2006 15:04:05 GMT")
	if got := parseRetryAfter(future); got < 80*time.Second || got > 91*time.Second {
		t.Errorf("parseRetryAfter(+90s date) = %v, want ~90s", got)
	}
}

func TestUnavailableErrorUnwrapsBoth(t *testing.T) {
	last := errors.New("wire: connection refused")
	err := error(&unavailableError{method: "GET", path: "/v1/meta", attempts: 3, last: last})
	if !errors.Is(err, v6class.ErrUnavailable) {
		t.Fatal("unavailableError does not unwrap to ErrUnavailable")
	}
	if !errors.Is(err, last) {
		t.Fatal("unavailableError does not unwrap to the last attempt's error")
	}
}

// The breaker's lifecycle: consecutive availability failures open it, the
// cooldown admits exactly one half-open probe, and the probe's verdict
// picks between closing and another full open period.
func TestBreakerLifecycle(t *testing.T) {
	br := newBreaker(BreakerPolicy{Threshold: 2, Cooldown: 40 * time.Millisecond})
	if !br.allow() {
		t.Fatal("fresh breaker rejects")
	}
	br.record(false)
	if !br.allow() {
		t.Fatal("one failure below threshold opened the breaker")
	}
	br.record(false)
	if br.allow() {
		t.Fatal("threshold failures did not open the breaker")
	}
	time.Sleep(50 * time.Millisecond)
	if !br.allow() {
		t.Fatal("cooldown elapsed but no half-open probe admitted")
	}
	if br.allow() {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	br.record(true)
	if !br.allow() {
		t.Fatal("successful probe did not close the breaker")
	}

	// The failure path: a failed probe reopens immediately.
	br.record(false)
	br.record(false)
	time.Sleep(50 * time.Millisecond)
	if !br.allow() {
		t.Fatal("no probe after second cooldown")
	}
	br.record(false)
	if br.allow() {
		t.Fatal("failed probe did not reopen the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	br := newBreaker(BreakerPolicy{Threshold: -1})
	for i := 0; i < 100; i++ {
		br.record(false)
		if !br.allow() {
			t.Fatal("disabled breaker rejected a request")
		}
	}
}

// BenchmarkBackoffDelay is the per-retry decision cost — noise floor
// material, pinned so a future policy change cannot silently put math in
// the hot retry path.
func BenchmarkBackoffDelay(b *testing.B) {
	var p Backoff
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.delay(i%8, 0)
	}
}
