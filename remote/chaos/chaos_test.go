package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// faultSeq records n consecutive decisions.
func faultSeq(in *Injector, n int) []fault {
	out := make([]fault, n)
	for i := range out {
		out[i] = in.decide()
	}
	return out
}

func TestDeterminism(t *testing.T) {
	p := Policy{Seed: 42, FailRate: 0.2, ResetRate: 0.1, PartialRate: 0.05, HangRate: 0.05}
	a := faultSeq(NewInjector(p), 500)
	b := faultSeq(NewInjector(p), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a[i], b[i])
		}
	}
	if c := faultSeq(NewInjector(Policy{Seed: 43, FailRate: 0.2, ResetRate: 0.1, PartialRate: 0.05, HangRate: 0.05}), 500); equalSeq(a, c) {
		t.Fatal("different seeds produced the identical 500-request fault sequence")
	}
}

func equalSeq(a, b []fault) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRates(t *testing.T) {
	const n = 4000
	in := NewInjector(Policy{Seed: 7, FailRate: 0.3})
	faults := 0
	for _, f := range faultSeq(in, n) {
		if f != faultNone {
			faults++
		}
	}
	if frac := float64(faults) / n; frac < 0.25 || frac > 0.35 {
		t.Fatalf("30%% fail rate injected %.1f%% faults over %d requests", 100*frac, n)
	}
	if st := in.Stats(); st.Requests != n || st.Faults != faults {
		t.Fatalf("Stats = %+v, want %d requests / %d faults", st, n, faults)
	}
}

// TestMaxFaultsRecovery proves the faults-then-recovery switch: once the
// budget is spent, every request passes clean forever.
func TestMaxFaultsRecovery(t *testing.T) {
	in := NewInjector(Policy{Seed: 1, FailRate: 1, MaxFaults: 5})
	seq := faultSeq(in, 100)
	for i, f := range seq {
		if i < 5 && f == faultNone {
			t.Fatalf("request %d inside the fault budget passed clean", i)
		}
		if i >= 5 && f != faultNone {
			t.Fatalf("request %d after the budget was faulted", i)
		}
	}
}

// TestFlapping proves the request-count flap cycle: DownFor faulted,
// UpFor clean, repeating.
func TestFlapping(t *testing.T) {
	in := NewInjector(Policy{Seed: 1, DownFor: 2, UpFor: 3})
	for i, f := range faultSeq(in, 20) {
		down := i%5 < 2
		if down && f != faultStatus {
			t.Fatalf("request %d in the down window got %v, want a status fault", i, f)
		}
		if !down && f != faultNone {
			t.Fatalf("request %d in the up window got %v, want clean", i, f)
		}
	}
}

func TestTransportStatusAndRecovery(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "clean") //nolint:errcheck
	}))
	defer srv.Close()
	in := NewInjector(Policy{Seed: 1, FailRate: 1, RetryAfter: 2 * time.Second, MaxFaults: 1})
	hc := &http.Client{Transport: &Transport{Injector: in}}

	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("faulted request errored at the transport: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}

	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-budget request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "clean" {
		t.Fatalf("post-budget response = %d %q, want 200 \"clean\"", resp.StatusCode, body)
	}
}

func TestTransportReset(t *testing.T) {
	in := NewInjector(Policy{Seed: 1, ResetRate: 1})
	hc := &http.Client{Transport: &Transport{Injector: in}}
	if _, err := hc.Get("http://unreached.invalid/"); err == nil {
		t.Fatal("reset fault returned no error")
	}
}

func TestTransportPartialBody(t *testing.T) {
	payload := strings.Repeat("x", 1000)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload) //nolint:errcheck
	}))
	defer srv.Close()
	in := NewInjector(Policy{Seed: 1, PartialRate: 1})
	hc := &http.Client{Transport: &Transport{Injector: in}}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("partial-body request errored early: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reading truncated body: err = %v, want ErrUnexpectedEOF", err)
	}
	if len(body) != len(payload)/2 {
		t.Fatalf("received %d bytes before the cut, want %d", len(body), len(payload)/2)
	}
}

func TestTransportHangHonorsContext(t *testing.T) {
	in := NewInjector(Policy{Seed: 1, HangRate: 1, Hang: time.Minute})
	hc := &http.Client{Transport: &Transport{Injector: in}, Timeout: 50 * time.Millisecond}
	start := time.Now()
	if _, err := hc.Get("http://unreached.invalid/"); err == nil {
		t.Fatal("hung request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang ignored the request deadline: took %v", elapsed)
	}
}

func TestProxyForwardsClean(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Echo-Query", r.URL.RawQuery)
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "pot") //nolint:errcheck
	}))
	defer backend.Close()
	px, err := NewProxy(NewInjector(Policy{}), backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(px)
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/meta?snap=x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot || string(body) != "pot" {
		t.Fatalf("forwarded response = %d %q, want 418 \"pot\"", resp.StatusCode, body)
	}
	if q := resp.Header.Get("X-Echo-Query"); q != "snap=x" {
		t.Fatalf("query not forwarded: %q", q)
	}
}

func TestProxyInjectsStatusAndReset(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "clean") //nolint:errcheck
	}))
	defer backend.Close()

	px, err := NewProxy(NewInjector(Policy{Seed: 1, FailRate: 1, RetryAfter: time.Second}), backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(px)
	defer front.Close()
	resp, err := http.Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("injected proxy response = %d Retry-After %q, want 503 / \"1\"",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	rpx, err := NewProxy(NewInjector(Policy{Seed: 1, ResetRate: 1}), backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	rfront := httptest.NewServer(rpx)
	defer rfront.Close()
	if resp, err := http.Get(rfront.URL); err == nil {
		resp.Body.Close()
		t.Fatal("reset-injecting proxy answered instead of severing the connection")
	}
}
