// Package chaos is the cluster tier's fault-injection harness: a
// deterministic fault source that can sit either inside an http.Client
// (Transport, wrapping a RoundTripper) or in front of a server (Proxy, an
// http.Handler forwarding to a real backend). Both inject the failure
// modes a production cluster actually sees — 5xx bursts, connection
// resets, hangs, truncated bodies, flapping backends — from a seeded
// generator, so resilience tests are reproducible run to run.
//
// The conformance suite uses it to prove the remote client and the
// scatter-gather coordinator stay byte-identical to a local engine while a
// backend misbehaves, and that degraded mode reports exactly the coverage
// it answered from.
package chaos

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Policy says which faults to inject and how often. Rates are per-request
// probabilities in [0,1] and are tried in order (fail, reset, partial,
// hang): their sum is the total fault probability and must not exceed 1.
type Policy struct {
	// Seed feeds the deterministic generator; the same seed and request
	// sequence injects the same faults.
	Seed uint64
	// FailRate is the probability of answering with a synthetic error
	// status instead of the real response.
	FailRate float64
	// Status is the synthetic status injected by FailRate faults
	// (default 503).
	Status int
	// RetryAfter, when positive, stamps a Retry-After header (rounded up
	// to whole seconds) on injected statuses.
	RetryAfter time.Duration
	// ResetRate is the probability of killing the connection: the
	// Transport returns an ECONNRESET-wrapped error, the Proxy aborts the
	// response mid-stream.
	ResetRate float64
	// PartialRate is the probability of truncating the response body
	// halfway while promising the full Content-Length.
	PartialRate float64
	// HangRate is the probability of stalling for Hang before answering;
	// a request context that expires first wins (the Transport returns
	// its error, the Proxy aborts).
	HangRate float64
	// Hang is how long a HangRate fault stalls (default 30s — effectively
	// "until the caller's deadline" in tests).
	Hang time.Duration
	// DownFor/UpFor, when DownFor > 0, flap the target by request count:
	// each cycle, the first DownFor requests fault (by the rates above,
	// or an unconditional Status fault when no rates are set) and the
	// next UpFor requests pass clean.
	DownFor, UpFor int
	// MaxFaults, when positive, caps total injected faults: after the
	// budget is spent every request passes clean. This is the
	// faults-then-recovery switch.
	MaxFaults int
}

// Stats counts what an Injector has done so far.
type Stats struct {
	// Requests is how many requests were seen.
	Requests int
	// Faults is how many of them had a fault injected.
	Faults int
}

// fault is one injection decision.
type fault int

const (
	faultNone fault = iota
	faultStatus
	faultReset
	faultPartial
	faultHang
)

// Injector makes deterministic per-request fault decisions under a
// Policy. One Injector may back both a Transport and a Proxy, or several
// of either; decisions are serialized, so a fixed seed and request order
// reproduce exactly.
type Injector struct {
	p Policy

	mu       sync.Mutex
	rng      *rand.Rand
	requests int
	faults   int
}

// NewInjector builds an Injector for p.
func NewInjector(p Policy) *Injector {
	if p.Status == 0 {
		p.Status = http.StatusServiceUnavailable
	}
	if p.Hang <= 0 {
		p.Hang = 30 * time.Second
	}
	return &Injector{
		p:   p,
		rng: rand.New(rand.NewPCG(p.Seed, p.Seed^0x9e3779b97f4a7c15)),
	}
}

// Stats reports the requests seen and faults injected so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Stats{Requests: in.requests, Faults: in.faults}
}

// decide makes the fault decision for the next request.
func (in *Injector) decide() fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.requests++
	if in.p.MaxFaults > 0 && in.faults >= in.p.MaxFaults {
		return faultNone
	}
	unconditional := false
	if in.p.DownFor > 0 {
		cycle := in.p.DownFor + in.p.UpFor
		if (in.requests-1)%cycle >= in.p.DownFor {
			return faultNone // up window
		}
		// Down window: fault by the rates, or unconditionally when none
		// are configured.
		unconditional = in.p.FailRate == 0 && in.p.ResetRate == 0 &&
			in.p.PartialRate == 0 && in.p.HangRate == 0
	}
	if unconditional {
		in.faults++
		return faultStatus
	}
	r := in.rng.Float64()
	for _, c := range []struct {
		rate float64
		f    fault
	}{
		{in.p.FailRate, faultStatus},
		{in.p.ResetRate, faultReset},
		{in.p.PartialRate, faultPartial},
		{in.p.HangRate, faultHang},
	} {
		if r < c.rate {
			in.faults++
			return c.f
		}
		r -= c.rate
	}
	return faultNone
}

// retryAfterSeconds renders the policy's Retry-After as whole seconds,
// rounding up so a sub-second hint is not truncated to zero.
func (in *Injector) retryAfterSeconds() string {
	return strconv.Itoa(int((in.p.RetryAfter + time.Second - 1) / time.Second))
}

// Transport wraps an http.RoundTripper with fault injection on the client
// side of the wire: injected statuses, reset errors, hangs honoring the
// request context, and truncated bodies. Use it inside an http.Client
// handed to remote.Dial via remote.WithHTTPClient.
type Transport struct {
	// Injector makes the decisions.
	Injector *Injector
	// Next performs clean requests (default http.DefaultTransport).
	Next http.RoundTripper
}

func (t *Transport) next() http.RoundTripper {
	if t.Next != nil {
		return t.Next
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.Injector
	switch in.decide() {
	case faultStatus:
		body := fmt.Sprintf("chaos: injected HTTP %d", in.p.Status)
		h := make(http.Header)
		h.Set("Content-Type", "text/plain")
		if in.p.RetryAfter > 0 {
			h.Set("Retry-After", in.retryAfterSeconds())
		}
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", in.p.Status, http.StatusText(in.p.Status)),
			StatusCode:    in.p.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        h,
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case faultReset:
		return nil, fmt.Errorf("chaos: %w", syscall.ECONNRESET)
	case faultHang:
		select {
		case <-req.Context().Done():
			return nil, fmt.Errorf("chaos: hang: %w", req.Context().Err())
		case <-time.After(in.p.Hang):
			return nil, fmt.Errorf("chaos: hang elapsed: %w", syscall.ECONNRESET)
		}
	case faultPartial:
		resp, err := t.next().RoundTrip(req)
		if err != nil {
			return resp, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, fmt.Errorf("chaos: reading body to truncate: %w", rerr)
		}
		// Promise the full length, deliver half, then fail the read the
		// way a torn connection does.
		resp.Body = &truncatedBody{data: data[:len(data)/2]}
		resp.ContentLength = int64(len(data))
		return resp, nil
	}
	return t.next().RoundTrip(req)
}

// truncatedBody yields its data then fails with unexpected EOF, as a read
// from a connection torn mid-body does.
type truncatedBody struct {
	data []byte
	off  int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *truncatedBody) Close() error { return nil }

// Proxy injects faults on the server side of the wire: it fronts one real
// backend, forwarding clean requests and corrupting the rest. Serve it
// from an httptest.Server and point remote.Dial at the proxy to subject a
// real serve instance to faults without touching it.
type Proxy struct {
	in     *Injector
	target *url.URL
	client *http.Client
}

// NewProxy builds a Proxy forwarding to target (a base URL such as an
// httptest.Server.URL).
func NewProxy(in *Injector, target string) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy target: %w", err)
	}
	return &Proxy{in: in, target: u, client: &http.Client{}}, nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch p.in.decide() {
	case faultStatus:
		if p.in.p.RetryAfter > 0 {
			w.Header().Set("Retry-After", p.in.retryAfterSeconds())
		}
		w.WriteHeader(p.in.p.Status)
		fmt.Fprintf(w, "chaos: injected HTTP %d", p.in.p.Status)
		return
	case faultReset:
		// ErrAbortHandler makes net/http sever the connection without a
		// response — the client sees a reset/EOF transport error.
		panic(http.ErrAbortHandler)
	case faultHang:
		select {
		case <-r.Context().Done():
		case <-time.After(p.in.p.Hang):
		}
		panic(http.ErrAbortHandler)
	case faultPartial:
		status, header, body, err := p.forward(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		copyHeader(w.Header(), header)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(status)
		w.(io.Writer).Write(body[:len(body)/2]) //nolint:errcheck
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	status, header, body, err := p.forward(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	copyHeader(w.Header(), header)
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck
}

// forward performs the real request against the target and returns the
// whole response, buffered so partial-body faults can promise the true
// length.
func (p *Proxy) forward(r *http.Request) (int, http.Header, []byte, error) {
	u := *p.target
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst[k] = append(dst[k], v)
		}
	}
}
