package remote_test

import (
	"net/http/httptest"
	"sync"
	"testing"

	"v6class"
	"v6class/remote"
	"v6class/serve"
	"v6class/synth"
)

// Cluster-tier benchmarks: the cost of the wire. BenchmarkRemoteLookup is
// the scalar floor — one point query through HTTP client, handler stack
// and envelope decode — and BenchmarkCoordinatorKeys is the enumeration
// ceiling: a full globally ordered key sweep scatter-gathered from three
// paged backends and heap-merged. They run in CI's bench job against the
// committed BENCH_cluster_baseline.json.

const (
	benchStudyDays = 40
	benchBackends  = 3
)

var (
	benchOnce   sync.Once
	benchRemote *remote.Engine
	benchCoord  *remote.Coordinator
	benchAddrs  []v6class.Addr
)

// benchSetup builds one scaled synthetic census, serves it whole behind
// one httptest server for the remote engine, and partitioned behind three
// more for the coordinator — once per process. The servers live for the
// whole benchmark run; the process exit reclaims them.
func benchSetup(b *testing.B) {
	benchOnce.Do(func() {
		w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05, StudyDays: benchStudyDays})
		logs := w.Days(10, 24)

		build := func(part []v6class.DayLog) v6class.Engine {
			eng, err := v6class.New(v6class.WithStudyDays(benchStudyDays))
			if err != nil {
				panic(err)
			}
			if err := eng.AddDays(part); err != nil {
				panic(err)
			}
			if err := eng.Freeze(); err != nil {
				panic(err)
			}
			return eng
		}
		dial := func(eng v6class.Engine) *remote.Engine {
			s := serve.New(serve.Options{})
			s.Install("bench", "", eng)
			srv := httptest.NewServer(s.Handler())
			r, err := remote.Dial(srv.URL, remote.WithSnapshot("bench"))
			if err != nil {
				panic(err)
			}
			return r
		}

		whole := build(logs)
		benchRemote = dial(whole)
		addrs, err := whole.AddrsActiveOn(17)
		if err != nil {
			panic(err)
		}
		for a := range addrs {
			benchAddrs = append(benchAddrs, a)
		}
		if len(benchAddrs) == 0 {
			panic("bench census has no active addresses")
		}

		parts := remote.SplitLogs(logs, benchBackends, remote.PartitionByNetworkID(benchBackends))
		engines := make([]v6class.Engine, benchBackends)
		for i, part := range parts {
			engines[i] = dial(build(part))
		}
		benchCoord, err = remote.NewCoordinator(engines, nil)
		if err != nil {
			panic(err)
		}
	})
}

// BenchmarkRemoteLookup measures one point lookup over the wire — HTTP
// round trip, handler dispatch, JSON both ways — with concurrent clients.
func BenchmarkRemoteLookup(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a := benchAddrs[i%len(benchAddrs)]
			if _, err := benchRemote.LookupAddr(a); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkCoordinatorKeys drains the coordinator's globally ordered
// address enumeration: every backend pages its sorted keys over HTTP and
// the coordinator heap-merges the streams.
func BenchmarkCoordinatorKeys(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keys, err := benchCoord.KeysOrdered(v6class.Addresses)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for range keys {
			n++
		}
		if n == 0 {
			b.Fatal("coordinator enumerated no keys")
		}
	}
}

// BenchmarkClusterStability scatter-gathers one nd-stable split: three
// scalar backend calls merged by summation — the latency profile of every
// aggregate query on the cluster.
func BenchmarkClusterStability(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchCoord.Stability(v6class.Addresses, 17, 3); err != nil {
			b.Fatal(err)
		}
	}
}
