package remote

import (
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"

	"encoding/json"

	"v6class"
	"v6class/serve"
)

// The enumeration plumbing: the remote Engine answers the iterator methods
// by streaming the server's cursor-paged endpoints one page window at a
// time — only the current page is resident, so enumerating a
// million-key census costs pageSize rows of memory, not the census. The
// first page is fetched eagerly (parameter and availability errors
// surface from the method call, matching a local engine's fail-fast
// construction); later pages are fetched lazily between yields. When a
// snapshot reload expires the cursor mid-stream, the walk resumes
// strictly after the last yielded key against the new generation — the
// stream stays strictly ascending and duplicate-free, though rows before
// and after the reload come from different generations. Mid-stream
// failures past the retry budget have no error channel in iter.Seq; they
// panic with an error wrapping v6class.ErrUnavailable, which the serve
// layer's strict() recovery turns into a 503 when a coordinator is
// relaying the stream. The exported Pager skips all of that policy and
// exposes the raw page-by-page flow, typed errors included.

// getRaw performs one GET and returns the raw response body; non-2xx
// responses decode through the serve error envelope into typed *WireError
// values.
func (c *client) getRaw(path string, q url.Values) ([]byte, error) {
	resp, err := c.roundTrip(http.MethodGet, path, q, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remote: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, serve.DecodeError(resp.StatusCode, data)
	}
	return data, nil
}

// walkPages drains one cursor-paged endpoint into the consumer: it
// requests path with the base query, hands each page body to consume, and
// follows the cursor consume returns until it reports none. Used by the
// rank-ordered walks (e.g. /v1/topk) that cannot resume by key and must
// materialize from a single generation; the key-ordered enumerations
// stream through pageStream instead.
func (c *client) walkPages(path string, base url.Values, consume func(body []byte) (next string, err error)) error {
	q := url.Values{}
	for k, vs := range base {
		q[k] = vs
	}
	for {
		body, err := c.getRaw(path, q)
		if err != nil {
			return err
		}
		next, err := consume(body)
		if err != nil {
			return err
		}
		if next == "" {
			return nil
		}
		q.Set("cursor", next)
		q.Del("after")
		q.Del("offset")
	}
}

// retryExpired runs a full enumeration walk, restarting from scratch when
// a snapshot reload expires the cursor mid-stream, up to retries restarts.
// fetch must build fresh state on every call; any other error answers
// immediately. The streaming enumerations resume by key instead (see
// pageStream); this remains the policy for the materialized walks whose
// results must come from one generation, e.g. the ranked aggregates.
func retryExpired[T any](retries int, fetch func() ([]T, error)) ([]T, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		out, err := fetch()
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, serve.ErrCursorExpired) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// pageStream is one cursor-paged endpoint prepared for lazy streaming:
// the canonical query, the page decoder, and the resume position of a
// decoded row.
type pageStream[T any] struct {
	c      *client
	path   string
	base   url.Values // canonical parameters; cursor/after ride separately
	decode func(body []byte) (items []T, cursor string, err error)
	keyOf  func(T) string // the after= position a yielded row resumes from
}

// fetch retrieves one page: by cursor when non-empty, otherwise resuming
// strictly after the given key. A cursor expired by a snapshot reload
// falls back to the key resume — against whatever generation now serves —
// up to the retry budget; a key-resume request carries no cursor and
// cannot itself expire.
func (s *pageStream[T]) fetch(after, cursor string) ([]T, string, error) {
	var lastErr error
	for attempt := 0; attempt <= s.c.retries; attempt++ {
		q := url.Values{}
		for k, vs := range s.base {
			q[k] = vs
		}
		if cursor != "" {
			q.Set("cursor", cursor)
		} else if after != "" {
			q.Set("after", after)
		}
		body, err := s.c.getRaw(s.path, q)
		if err == nil {
			return s.decode(body)
		}
		if !errors.Is(err, serve.ErrCursorExpired) {
			return nil, "", err
		}
		cursor = ""
		lastErr = err
	}
	return nil, "", lastErr
}

// stream starts the lazy enumeration, resuming strictly after the given
// key when non-empty. The first page is fetched here, eagerly; the
// returned Seq is re-iterable — every iteration replays the cached first
// page and then walks the remaining pages afresh.
func (s *pageStream[T]) stream(after string) (iter.Seq[T], error) {
	first, firstCursor, err := s.fetch(after, "")
	if err != nil {
		return nil, err
	}
	return func(yield func(T) bool) {
		items, cursor, last := first, firstCursor, after
		for {
			for _, it := range items {
				if !yield(it) {
					return
				}
				last = s.keyOf(it)
			}
			if cursor == "" {
				return
			}
			items, cursor, err = s.fetch(last, cursor)
			if err != nil {
				panic(fmt.Errorf("%w: enumeration of %s failed mid-stream: %v",
					v6class.ErrUnavailable, s.path, err))
			}
		}
	}, nil
}

// keysPage mirrors the /v1/keys page shape (the fields the client reads).
type keysPage struct {
	Keys   []string `json:"keys"`
	Cursor string   `json:"cursor"`
}

func parseKeys(page keysPage, out []v6class.Prefix) ([]v6class.Prefix, error) {
	for _, s := range page.Keys {
		p, err := v6class.ParsePrefix(s)
		if err != nil {
			return nil, fmt.Errorf("remote: bad key %q in keys page: %v", s, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// keysQuery builds the canonical /v1/keys parameter set.
func (e *Engine) keysQuery(pop v6class.Population, days []int) url.Values {
	q := url.Values{}
	serve.EncodePop(q, pop)
	serve.EncodeDays(q, days)
	q.Set("limit", strconv.Itoa(e.c.pageSize))
	return q
}

// keysStream prepares the /v1/keys enumeration for streaming.
func (e *Engine) keysStream(pop v6class.Population, days []int) *pageStream[v6class.Prefix] {
	return &pageStream[v6class.Prefix]{
		c: e.c, path: "/v1/keys", base: e.keysQuery(pop, days),
		decode: func(body []byte) ([]v6class.Prefix, string, error) {
			var page keysPage
			if err := json.Unmarshal(body, &page); err != nil {
				return nil, "", fmt.Errorf("remote: decoding keys page: %w", err)
			}
			keys, err := parseKeys(page, nil)
			return keys, page.Cursor, err
		},
		keyOf: func(p v6class.Prefix) string { return p.String() },
	}
}

// KeysOrdered streams the keys of the population in the canonical total
// order, one page window at a time.
func (e *Engine) KeysOrdered(pop v6class.Population, days ...int) (iter.Seq[v6class.Prefix], error) {
	return e.keysStream(pop, days).stream("")
}

// KeysOrderedAfter resumes KeysOrdered strictly after a key.
func (e *Engine) KeysOrderedAfter(pop v6class.Population, after v6class.Prefix, days ...int) (iter.Seq[v6class.Prefix], error) {
	return e.keysStream(pop, days).stream(after.String())
}

// Keys streams every key of the population ever observed.
func (e *Engine) Keys(pop v6class.Population) (iter.Seq[v6class.Prefix], error) {
	return e.KeysOrdered(pop)
}

// AddrsActiveOn streams every address active on at least one of the days.
func (e *Engine) AddrsActiveOn(days ...int) (iter.Seq[v6class.Addr], error) {
	keys, err := e.keysStream(v6class.Addresses, days).stream("")
	if err != nil {
		return nil, err
	}
	return func(yield func(v6class.Addr) bool) {
		for p := range keys {
			if !yield(p.Addr()) {
				return
			}
		}
	}, nil
}

// Prefixes64ActiveOn streams every /64 active on at least one of the days.
func (e *Engine) Prefixes64ActiveOn(days ...int) (iter.Seq[v6class.Prefix], error) {
	return e.KeysOrdered(v6class.Prefixes64, days...)
}

// stablePage mirrors the /v1/stable page shape.
type stablePage struct {
	Addrs  []string `json:"addrs"`
	Cursor string   `json:"cursor"`
}

// stableStream prepares the /v1/stable enumeration for streaming.
func (e *Engine) stableStream(ref, n int) *pageStream[v6class.Addr] {
	q := url.Values{}
	q.Set("ref", strconv.Itoa(ref))
	q.Set("n", strconv.Itoa(n))
	q.Set("limit", strconv.Itoa(e.c.pageSize))
	return &pageStream[v6class.Addr]{
		c: e.c, path: "/v1/stable", base: q,
		decode: func(body []byte) ([]v6class.Addr, string, error) {
			var page stablePage
			if err := json.Unmarshal(body, &page); err != nil {
				return nil, "", fmt.Errorf("remote: decoding stable page: %w", err)
			}
			out := make([]v6class.Addr, 0, len(page.Addrs))
			for _, s := range page.Addrs {
				a, err := v6class.ParseAddr(s)
				if err != nil {
					return nil, "", fmt.Errorf("remote: bad address %q in stable page: %v", s, err)
				}
				out = append(out, a)
			}
			return out, page.Cursor, nil
		},
		keyOf: func(a v6class.Addr) string { return a.String() },
	}
}

// StableAddrsOrdered streams the nd-stable addresses for a reference day
// in ascending address order, under the server's default classification
// options.
func (e *Engine) StableAddrsOrdered(ref, n int) (iter.Seq[v6class.Addr], error) {
	return e.stableStream(ref, n).stream("")
}

// StableAddrsOrderedAfter resumes StableAddrsOrdered strictly after an
// address.
func (e *Engine) StableAddrsOrderedAfter(ref, n int, after v6class.Addr) (iter.Seq[v6class.Addr], error) {
	return e.stableStream(ref, n).stream(after.String())
}

// StableAddrs streams the nd-stable addresses for a reference day, under
// the server's default classification options.
func (e *Engine) StableAddrs(ref, n int) (iter.Seq[v6class.Addr], error) {
	return e.StableAddrsOrdered(ref, n)
}

// lifetimesPage mirrors the /v1/lifetimes page shape.
type lifetimesPage struct {
	Rows []struct {
		Prefix     string `json:"prefix"`
		First      int    `json:"first"`
		Last       int    `json:"last"`
		ActiveDays int    `json:"activeDays"`
		Runs       int    `json:"runs"`
	} `json:"rows"`
	Cursor string `json:"cursor"`
}

// lifetimeEntry is one decoded (key, activity) pair.
type lifetimeEntry struct {
	p   v6class.Prefix
	act v6class.Activity
}

// lifetimesStream prepares the /v1/lifetimes enumeration for streaming.
func (e *Engine) lifetimesStream(pop v6class.Population) *pageStream[lifetimeEntry] {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("limit", strconv.Itoa(e.c.pageSize))
	return &pageStream[lifetimeEntry]{
		c: e.c, path: "/v1/lifetimes", base: q,
		decode: func(body []byte) ([]lifetimeEntry, string, error) {
			var page lifetimesPage
			if err := json.Unmarshal(body, &page); err != nil {
				return nil, "", fmt.Errorf("remote: decoding lifetimes page: %w", err)
			}
			out := make([]lifetimeEntry, 0, len(page.Rows))
			for _, row := range page.Rows {
				p, err := v6class.ParsePrefix(row.Prefix)
				if err != nil {
					return nil, "", fmt.Errorf("remote: bad key %q in lifetimes page: %v", row.Prefix, err)
				}
				out = append(out, lifetimeEntry{p: p, act: v6class.Activity{
					First:      v6class.Day(row.First),
					Last:       v6class.Day(row.Last),
					ActiveDays: row.ActiveDays,
					Runs:       row.Runs,
				}})
			}
			return out, page.Cursor, nil
		},
		keyOf: func(le lifetimeEntry) string { return le.p.String() },
	}
}

// LifetimesOrdered streams every key of the population with its activity
// profile, in the canonical key order.
func (e *Engine) LifetimesOrdered(pop v6class.Population) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	rows, err := e.lifetimesStream(pop).stream("")
	if err != nil {
		return nil, err
	}
	return lifetimesSeq(rows), nil
}

// LifetimesOrderedAfter resumes LifetimesOrdered strictly after a key.
func (e *Engine) LifetimesOrderedAfter(pop v6class.Population, after v6class.Prefix) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	rows, err := e.lifetimesStream(pop).stream(after.String())
	if err != nil {
		return nil, err
	}
	return lifetimesSeq(rows), nil
}

// Lifetimes streams every key with its activity profile.
func (e *Engine) Lifetimes(pop v6class.Population) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	return e.LifetimesOrdered(pop)
}

func lifetimesSeq(rows iter.Seq[lifetimeEntry]) iter.Seq2[v6class.Prefix, v6class.Activity] {
	return func(yield func(v6class.Prefix, v6class.Activity) bool) {
		for r := range rows {
			if !yield(r.p, r.act) {
				return
			}
		}
	}
}

// Pager walks the ordered key enumeration one page at a time, exposing the
// raw cursor flow the Engine iterators hide. Unlike the iterators it never
// restarts or resumes: a snapshot reload between pages surfaces from Next
// as an error unwrapping serve.ErrCursorExpired, which makes it both the
// constant-memory bulk-export primitive and the hook for observing
// generation swaps mid-enumeration.
type Pager struct {
	e      *Engine
	base   url.Values
	cursor string
	done   bool
}

// KeysPager starts a page-at-a-time walk of KeysOrdered(pop, days...).
func (e *Engine) KeysPager(pop v6class.Population, days ...int) *Pager {
	return &Pager{e: e, base: e.keysQuery(pop, days)}
}

// Next fetches the next page of keys. more is false once the enumeration
// is exhausted; the final page may still carry keys. After an error the
// pager keeps its position — a transient failure can be retried by calling
// Next again, while a cursor_expired means the enumeration must restart.
func (p *Pager) Next() (keys []v6class.Prefix, more bool, err error) {
	if p.done {
		return nil, false, nil
	}
	q := url.Values{}
	for k, vs := range p.base {
		q[k] = vs
	}
	if p.cursor != "" {
		q.Set("cursor", p.cursor)
	}
	body, err := p.e.c.getRaw("/v1/keys", q)
	if err != nil {
		return nil, true, err
	}
	var page keysPage
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, true, fmt.Errorf("remote: decoding keys page: %w", err)
	}
	keys, err = parseKeys(page, nil)
	if err != nil {
		return nil, true, err
	}
	p.cursor = page.Cursor
	if p.cursor == "" {
		p.done = true
	}
	return keys, !p.done, nil
}
