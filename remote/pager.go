package remote

import (
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"

	"encoding/json"

	"v6class"
	"v6class/serve"
)

// The enumeration plumbing: the remote Engine answers the iterator methods
// by materializing the server's cursor-paged endpoints. A whole
// enumeration that loses its cursor to a snapshot reload (the server
// answers cursor_expired, HTTP 410) restarts from scratch against the new
// generation — up to the retry budget — so an Engine iterator never
// splices two generations, at the cost of re-reading the pages already
// fetched. The exported Pager skips that policy and exposes the raw
// page-by-page flow, typed errors included.

// getRaw performs one GET and returns the raw response body; non-2xx
// responses decode through the serve error envelope into typed *WireError
// values.
func (c *client) getRaw(path string, q url.Values) ([]byte, error) {
	resp, err := c.roundTrip(http.MethodGet, path, q, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remote: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, serve.DecodeError(resp.StatusCode, data)
	}
	return data, nil
}

// walkPages drains one cursor-paged endpoint: it requests path with the
// base query, hands each page body to consume, and follows the cursor
// consume returns until it reports none. The base parameters ride on every
// request — cursors are bound to their canonical query, which the server
// re-derives from the parameters — while any one-shot resume position
// (after=, offset=) is dropped once a cursor takes over.
func (c *client) walkPages(path string, base url.Values, consume func(body []byte) (next string, err error)) error {
	q := url.Values{}
	for k, vs := range base {
		q[k] = vs
	}
	for {
		body, err := c.getRaw(path, q)
		if err != nil {
			return err
		}
		next, err := consume(body)
		if err != nil {
			return err
		}
		if next == "" {
			return nil
		}
		q.Set("cursor", next)
		q.Del("after")
		q.Del("offset")
	}
}

// retryExpired runs a full enumeration walk, restarting from scratch when
// a snapshot reload expires the cursor mid-stream, up to retries restarts.
// fetch must build fresh state on every call; any other error answers
// immediately.
func retryExpired[T any](retries int, fetch func() ([]T, error)) ([]T, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		out, err := fetch()
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, serve.ErrCursorExpired) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// keysPage mirrors the /v1/keys page shape (the fields the client reads).
type keysPage struct {
	Keys   []string `json:"keys"`
	Cursor string   `json:"cursor"`
}

func parseKeys(page keysPage, out []v6class.Prefix) ([]v6class.Prefix, error) {
	for _, s := range page.Keys {
		p, err := v6class.ParsePrefix(s)
		if err != nil {
			return nil, fmt.Errorf("remote: bad key %q in keys page: %v", s, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// keysQuery builds the canonical /v1/keys parameter set.
func (e *Engine) keysQuery(pop v6class.Population, days []int) url.Values {
	q := url.Values{}
	serve.EncodePop(q, pop)
	serve.EncodeDays(q, days)
	q.Set("limit", strconv.Itoa(e.c.pageSize))
	return q
}

// fetchKeys materializes one ordered key enumeration from /v1/keys,
// resuming strictly after the given key when non-empty.
func (e *Engine) fetchKeys(pop v6class.Population, days []int, after string) ([]v6class.Prefix, error) {
	return retryExpired(e.c.retries, func() ([]v6class.Prefix, error) {
		q := e.keysQuery(pop, days)
		if after != "" {
			q.Set("after", after)
		}
		var out []v6class.Prefix
		err := e.c.walkPages("/v1/keys", q, func(body []byte) (string, error) {
			var page keysPage
			if err := json.Unmarshal(body, &page); err != nil {
				return "", fmt.Errorf("remote: decoding keys page: %w", err)
			}
			parsed, perr := parseKeys(page, out)
			out = parsed
			return page.Cursor, perr
		})
		return out, err
	})
}

// KeysOrdered streams the keys of the population in the canonical total
// order, materialized from the server's paged enumeration.
func (e *Engine) KeysOrdered(pop v6class.Population, days ...int) (iter.Seq[v6class.Prefix], error) {
	keys, err := e.fetchKeys(pop, days, "")
	if err != nil {
		return nil, err
	}
	return sliceSeq(keys), nil
}

// KeysOrderedAfter resumes KeysOrdered strictly after a key.
func (e *Engine) KeysOrderedAfter(pop v6class.Population, after v6class.Prefix, days ...int) (iter.Seq[v6class.Prefix], error) {
	keys, err := e.fetchKeys(pop, days, after.String())
	if err != nil {
		return nil, err
	}
	return sliceSeq(keys), nil
}

// Keys streams every key of the population ever observed.
func (e *Engine) Keys(pop v6class.Population) (iter.Seq[v6class.Prefix], error) {
	return e.KeysOrdered(pop)
}

// AddrsActiveOn streams every address active on at least one of the days.
func (e *Engine) AddrsActiveOn(days ...int) (iter.Seq[v6class.Addr], error) {
	keys, err := e.fetchKeys(v6class.Addresses, days, "")
	if err != nil {
		return nil, err
	}
	return func(yield func(v6class.Addr) bool) {
		for _, p := range keys {
			if !yield(p.Addr()) {
				return
			}
		}
	}, nil
}

// Prefixes64ActiveOn streams every /64 active on at least one of the days.
func (e *Engine) Prefixes64ActiveOn(days ...int) (iter.Seq[v6class.Prefix], error) {
	return e.KeysOrdered(v6class.Prefixes64, days...)
}

// stablePage mirrors the /v1/stable page shape.
type stablePage struct {
	Addrs  []string `json:"addrs"`
	Cursor string   `json:"cursor"`
}

// fetchStable materializes the ordered nd-stable address enumeration.
func (e *Engine) fetchStable(ref, n int, after string) ([]v6class.Addr, error) {
	return retryExpired(e.c.retries, func() ([]v6class.Addr, error) {
		q := url.Values{}
		q.Set("ref", strconv.Itoa(ref))
		q.Set("n", strconv.Itoa(n))
		q.Set("limit", strconv.Itoa(e.c.pageSize))
		if after != "" {
			q.Set("after", after)
		}
		var out []v6class.Addr
		err := e.c.walkPages("/v1/stable", q, func(body []byte) (string, error) {
			var page stablePage
			if err := json.Unmarshal(body, &page); err != nil {
				return "", fmt.Errorf("remote: decoding stable page: %w", err)
			}
			for _, s := range page.Addrs {
				a, err := v6class.ParseAddr(s)
				if err != nil {
					return "", fmt.Errorf("remote: bad address %q in stable page: %v", s, err)
				}
				out = append(out, a)
			}
			return page.Cursor, nil
		})
		return out, err
	})
}

// StableAddrsOrdered streams the nd-stable addresses for a reference day
// in ascending address order, under the server's default classification
// options.
func (e *Engine) StableAddrsOrdered(ref, n int) (iter.Seq[v6class.Addr], error) {
	addrs, err := e.fetchStable(ref, n, "")
	if err != nil {
		return nil, err
	}
	return sliceSeq(addrs), nil
}

// StableAddrsOrderedAfter resumes StableAddrsOrdered strictly after an
// address.
func (e *Engine) StableAddrsOrderedAfter(ref, n int, after v6class.Addr) (iter.Seq[v6class.Addr], error) {
	addrs, err := e.fetchStable(ref, n, after.String())
	if err != nil {
		return nil, err
	}
	return sliceSeq(addrs), nil
}

// StableAddrs streams the nd-stable addresses for a reference day, under
// the server's default classification options.
func (e *Engine) StableAddrs(ref, n int) (iter.Seq[v6class.Addr], error) {
	return e.StableAddrsOrdered(ref, n)
}

// lifetimesPage mirrors the /v1/lifetimes page shape.
type lifetimesPage struct {
	Rows []struct {
		Prefix     string `json:"prefix"`
		First      int    `json:"first"`
		Last       int    `json:"last"`
		ActiveDays int    `json:"activeDays"`
		Runs       int    `json:"runs"`
	} `json:"rows"`
	Cursor string `json:"cursor"`
}

// lifetimeEntry is one materialized (key, activity) pair.
type lifetimeEntry struct {
	p   v6class.Prefix
	act v6class.Activity
}

// fetchLifetimes materializes the ordered lifetime enumeration.
func (e *Engine) fetchLifetimes(pop v6class.Population, after string) ([]lifetimeEntry, error) {
	return retryExpired(e.c.retries, func() ([]lifetimeEntry, error) {
		q := url.Values{}
		serve.EncodePop(q, pop)
		q.Set("limit", strconv.Itoa(e.c.pageSize))
		if after != "" {
			q.Set("after", after)
		}
		var out []lifetimeEntry
		err := e.c.walkPages("/v1/lifetimes", q, func(body []byte) (string, error) {
			var page lifetimesPage
			if err := json.Unmarshal(body, &page); err != nil {
				return "", fmt.Errorf("remote: decoding lifetimes page: %w", err)
			}
			for _, row := range page.Rows {
				p, err := v6class.ParsePrefix(row.Prefix)
				if err != nil {
					return "", fmt.Errorf("remote: bad key %q in lifetimes page: %v", row.Prefix, err)
				}
				out = append(out, lifetimeEntry{p: p, act: v6class.Activity{
					First:      v6class.Day(row.First),
					Last:       v6class.Day(row.Last),
					ActiveDays: row.ActiveDays,
					Runs:       row.Runs,
				}})
			}
			return page.Cursor, nil
		})
		return out, err
	})
}

// LifetimesOrdered streams every key of the population with its activity
// profile, in the canonical key order.
func (e *Engine) LifetimesOrdered(pop v6class.Population) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	rows, err := e.fetchLifetimes(pop, "")
	if err != nil {
		return nil, err
	}
	return lifetimesSeq(rows), nil
}

// LifetimesOrderedAfter resumes LifetimesOrdered strictly after a key.
func (e *Engine) LifetimesOrderedAfter(pop v6class.Population, after v6class.Prefix) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	rows, err := e.fetchLifetimes(pop, after.String())
	if err != nil {
		return nil, err
	}
	return lifetimesSeq(rows), nil
}

// Lifetimes streams every key with its activity profile.
func (e *Engine) Lifetimes(pop v6class.Population) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	return e.LifetimesOrdered(pop)
}

func lifetimesSeq(rows []lifetimeEntry) iter.Seq2[v6class.Prefix, v6class.Activity] {
	return func(yield func(v6class.Prefix, v6class.Activity) bool) {
		for _, r := range rows {
			if !yield(r.p, r.act) {
				return
			}
		}
	}
}

// Pager walks the ordered key enumeration one page at a time, exposing the
// raw cursor flow the Engine iterators hide. Unlike the iterators it never
// restarts: a snapshot reload between pages surfaces from Next as an error
// unwrapping serve.ErrCursorExpired, which makes it both the
// constant-memory bulk-export primitive and the hook for observing
// generation swaps mid-enumeration.
type Pager struct {
	e      *Engine
	base   url.Values
	cursor string
	done   bool
}

// KeysPager starts a page-at-a-time walk of KeysOrdered(pop, days...).
func (e *Engine) KeysPager(pop v6class.Population, days ...int) *Pager {
	return &Pager{e: e, base: e.keysQuery(pop, days)}
}

// Next fetches the next page of keys. more is false once the enumeration
// is exhausted; the final page may still carry keys. After an error the
// pager keeps its position — a transient failure can be retried by calling
// Next again, while a cursor_expired means the enumeration must restart.
func (p *Pager) Next() (keys []v6class.Prefix, more bool, err error) {
	if p.done {
		return nil, false, nil
	}
	q := url.Values{}
	for k, vs := range p.base {
		q[k] = vs
	}
	if p.cursor != "" {
		q.Set("cursor", p.cursor)
	}
	body, err := p.e.c.getRaw("/v1/keys", q)
	if err != nil {
		return nil, true, err
	}
	var page keysPage
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, true, fmt.Errorf("remote: decoding keys page: %w", err)
	}
	keys, err = parseKeys(page, nil)
	if err != nil {
		return nil, true, err
	}
	p.cursor = page.Cursor
	if p.cursor == "" {
		p.done = true
	}
	return keys, !p.done, nil
}
