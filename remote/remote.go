// Package remote is the cluster tier's client side: it speaks the serve
// package's versioned wire API and presents any v6class server — one box
// or many — as a v6class.Engine.
//
// Dial connects to a single serve instance and returns an Engine whose
// queries are answered over HTTP: scalar queries map to one request each,
// enumerations walk the cursor-paged endpoints, and typed errors survive
// the wire (the serve error envelope's machine codes unwrap to the same
// sentinels a local engine returns, so errors.Is works identically).
//
// NewCoordinator composes several such backends — each holding a disjoint
// key partition — into one Engine: point queries route to the partition
// owner, bulk queries scatter to every backend in parallel and gather, and
// ordered enumerations k-way merge the per-backend ordered streams into
// one stream byte-identical to a single box holding the whole census.
package remote

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"encoding/json"

	"v6class/serve"
)

// Option configures Dial.
type Option func(*client)

// WithSnapshot selects the named snapshot on the server (default: the
// server's default snapshot).
func WithSnapshot(name string) Option { return func(c *client) { c.snap = name } }

// WithHTTPClient substitutes the http.Client used for every request —
// httptest servers, custom transports, instrumented clients.
func WithHTTPClient(hc *http.Client) Option { return func(c *client) { c.hc = hc } }

// WithTimeout bounds one whole logical call — every attempt plus every
// backoff delay between them (default 30s). When the budget runs out the
// call fails with an error wrapping v6class.ErrUnavailable rather than
// starting another attempt. Zero or negative disables the bound.
func WithTimeout(d time.Duration) Option { return func(c *client) { c.timeout = d } }

// WithAttemptTimeout bounds each individual HTTP attempt inside the
// whole-call budget (default 10s). A hung backend therefore costs one
// attempt, not the whole call: the attempt is canceled, the client backs
// off and retries. Zero or negative disables the per-attempt bound (the
// whole-call timeout still applies).
func WithAttemptTimeout(d time.Duration) Option { return func(c *client) { c.attempt = d } }

// WithRetries sets how many times a failed request is retried (default 2).
// Transport errors, 5xx responses and 429 responses retry (with the
// Backoff policy's delay in between); other 4xx responses never do. The
// same budget bounds how many times a paged enumeration restarts after a
// mid-stream cursor_expired.
func WithRetries(n int) Option { return func(c *client) { c.retries = n } }

// WithBackoff sets the retry delay policy (see Backoff; the zero value
// means the defaults: capped exponential from 100ms to 5s, factor 2, full
// jitter, Retry-After honored as a floor).
func WithBackoff(b Backoff) Option { return func(c *client) { c.backoff = b } }

// WithToken sends the admin token on write requests (ingest, freeze,
// reload are refused without it on token-configured servers).
func WithToken(token string) Option { return func(c *client) { c.token = token } }

// WithPageSize sets the page size the enumeration endpoints are walked
// with (default 1000; the server clamps to its own maximum).
func WithPageSize(n int) Option {
	return func(c *client) {
		if n > 0 {
			c.pageSize = n
		}
	}
}

// client is the HTTP plumbing shared by every Engine method: base URL,
// snapshot selection, auth, timeouts and the retry policy.
type client struct {
	base     string
	snap     string
	token    string
	hc       *http.Client
	timeout  time.Duration // whole-call budget: attempts + backoff
	attempt  time.Duration // per-attempt deadline inside the budget
	retries  int
	backoff  Backoff
	pageSize int
}

// withQuery builds the request URL for path with q plus the snapshot
// selector.
func (c *client) withQuery(path string, q url.Values) string {
	if q == nil {
		q = url.Values{}
	}
	if c.snap != "" {
		q.Set("snap", c.snap)
	}
	u := c.base + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// attemptContext builds one attempt's context: the earlier of the
// per-attempt deadline and the whole-call deadline. Without either, the
// context is merely cancellable (so the transport can always be released).
func (c *client) attemptContext(callDeadline time.Time) (context.Context, context.CancelFunc) {
	d := callDeadline
	if c.attempt > 0 {
		if ad := time.Now().Add(c.attempt); d.IsZero() || ad.Before(d) {
			d = ad
		}
	}
	if d.IsZero() {
		return context.WithCancel(context.Background())
	}
	return context.WithDeadline(context.Background(), d)
}

// cancelOnClose ties an attempt context's cancel to the response body's
// Close, so the context (and its timer) is released exactly when the caller
// finishes reading — never before, which would kill the read mid-body.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// drainLimit bounds how much of a doomed response body is read before the
// connection is reused; larger bodies close the connection instead.
const drainLimit = 64 << 10

// roundTrip performs one logical request under the retry policy: transport
// errors, 5xx and 429 responses retry up to the budget with capped
// exponential backoff (full jitter, Retry-After honored as a floor), each
// attempt bounded by the per-attempt deadline and the whole by the
// whole-call timeout. Other responses answer immediately. Failed attempts
// drain and close their bodies so the underlying connection is reused.
// body is replayed per attempt. The caller owns the returned response body.
//
// When the budget — retries or time — runs out, the error wraps both
// v6class.ErrUnavailable and the last attempt's failure.
func (c *client) roundTrip(method, path string, q url.Values, body []byte) (*http.Response, error) {
	u := c.withQuery(path, q)
	var callDeadline time.Time
	if c.timeout > 0 {
		callDeadline = time.Now().Add(c.timeout)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		actx, cancel := c.attemptContext(callDeadline)
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(actx, method, u, rd)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("remote: building request: %w", err)
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.hc.Do(req)
		var retryAfter time.Duration
		switch {
		case err != nil:
			cancel()
			lastErr = fmt.Errorf("remote: %s %s: %w", method, path, err)
		case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit)) //nolint:errcheck
			resp.Body.Close()
			cancel()
			lastErr = serve.DecodeError(resp.StatusCode, b)
		default:
			// Success, or a permanent (non-retryable 4xx) failure the
			// caller decodes. The attempt context must survive until the
			// body is consumed.
			resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}
		if attempt >= c.retries {
			return nil, &unavailableError{method: method, path: path, attempts: attempt + 1, last: lastErr}
		}
		d := c.backoff.delay(attempt, retryAfter)
		if !callDeadline.IsZero() && time.Now().Add(d).After(callDeadline) {
			// The budget cannot fit another attempt; fail now rather than
			// sleep into the deadline.
			return nil, &unavailableError{method: method, path: path, attempts: attempt + 1, last: lastErr}
		}
		time.Sleep(d)
	}
}

// call performs a request and decodes a JSON response into out (when
// non-nil). Non-2xx responses decode through the serve error envelope, so
// the returned error unwraps to the façade's typed sentinels.
func (c *client) call(method, path string, q url.Values, body []byte, out any) error {
	resp, err := c.roundTrip(method, path, q, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("remote: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return serve.DecodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("remote: decoding %s response: %w", path, err)
	}
	return nil
}

// get is call for parameterless-body GET queries.
func (c *client) get(path string, q url.Values, out any) error {
	return c.call(http.MethodGet, path, q, nil, out)
}

// Dial connects to a v6class serve instance and returns its census as an
// Engine. The dial itself performs one /v1/meta request, so a bad URL or
// an unknown snapshot fails fast rather than on first query.
//
// The returned Engine answers every query over the wire against the
// server's currently installed snapshot generation; enumerations that
// span multiple pages stream lazily and, if a reload lands mid-stream,
// resume after the last yielded key (up to the retry budget), so an
// iterator stays strictly ascending and duplicate-free across generation
// swaps.
func Dial(baseURL string, opts ...Option) (*Engine, error) {
	c := &client{
		base:     strings.TrimRight(baseURL, "/"),
		hc:       nil,
		timeout:  30 * time.Second,
		attempt:  10 * time.Second,
		retries:  2,
		pageSize: 1000,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		// Deadlines are carried by per-attempt request contexts, never by
		// http.Client.Timeout — a client-level timeout would span retries
		// of the same attempt budget twice.
		c.hc = &http.Client{}
	}
	e := &Engine{c: c}
	meta, err := e.meta()
	if err != nil {
		return nil, err
	}
	e.studyDays = meta.StudyDays
	e.frozen.Store(true)
	return e, nil
}
