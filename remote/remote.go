// Package remote is the cluster tier's client side: it speaks the serve
// package's versioned wire API and presents any v6class server — one box
// or many — as a v6class.Engine.
//
// Dial connects to a single serve instance and returns an Engine whose
// queries are answered over HTTP: scalar queries map to one request each,
// enumerations walk the cursor-paged endpoints, and typed errors survive
// the wire (the serve error envelope's machine codes unwrap to the same
// sentinels a local engine returns, so errors.Is works identically).
//
// NewCoordinator composes several such backends — each holding a disjoint
// key partition — into one Engine: point queries route to the partition
// owner, bulk queries scatter to every backend in parallel and gather, and
// ordered enumerations k-way merge the per-backend ordered streams into
// one stream byte-identical to a single box holding the whole census.
package remote

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"encoding/json"

	"v6class/serve"
)

// Option configures Dial.
type Option func(*client)

// WithSnapshot selects the named snapshot on the server (default: the
// server's default snapshot).
func WithSnapshot(name string) Option { return func(c *client) { c.snap = name } }

// WithHTTPClient substitutes the http.Client used for every request —
// httptest servers, custom transports, instrumented clients.
func WithHTTPClient(hc *http.Client) Option { return func(c *client) { c.hc = hc } }

// WithTimeout bounds each HTTP request (default 30s). The per-request
// timeout is ignored when WithHTTPClient supplied a client with its own.
func WithTimeout(d time.Duration) Option { return func(c *client) { c.timeout = d } }

// WithRetries sets how many times a failed request is retried (default 2).
// Transport errors and 5xx responses retry; 4xx responses never do. The
// same budget bounds how many times a paged enumeration restarts after a
// mid-stream cursor_expired.
func WithRetries(n int) Option { return func(c *client) { c.retries = n } }

// WithToken sends the admin token on write requests (ingest, freeze,
// reload are refused without it on token-configured servers).
func WithToken(token string) Option { return func(c *client) { c.token = token } }

// WithPageSize sets the page size the enumeration endpoints are walked
// with (default 1000; the server clamps to its own maximum).
func WithPageSize(n int) Option {
	return func(c *client) {
		if n > 0 {
			c.pageSize = n
		}
	}
}

// client is the HTTP plumbing shared by every Engine method: base URL,
// snapshot selection, auth, timeouts and the retry policy.
type client struct {
	base     string
	snap     string
	token    string
	hc       *http.Client
	timeout  time.Duration
	retries  int
	pageSize int
}

// withQuery builds the request URL for path with q plus the snapshot
// selector.
func (c *client) withQuery(path string, q url.Values) string {
	if q == nil {
		q = url.Values{}
	}
	if c.snap != "" {
		q.Set("snap", c.snap)
	}
	u := c.base + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// roundTrip performs one request with the retry policy: transport errors
// and 5xx responses retry up to the budget, everything else answers
// immediately. body is replayed per attempt. The caller owns the returned
// response body.
func (c *client) roundTrip(method, path string, q url.Values, body []byte) (*http.Response, error) {
	u := c.withQuery(path, q)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, u, rd)
		if err != nil {
			return nil, fmt.Errorf("remote: building request: %w", err)
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("remote: %s %s: %w", method, path, err)
			continue
		}
		if resp.StatusCode >= 500 && attempt < c.retries {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = serve.DecodeError(resp.StatusCode, b)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// call performs a request and decodes a JSON response into out (when
// non-nil). Non-2xx responses decode through the serve error envelope, so
// the returned error unwraps to the façade's typed sentinels.
func (c *client) call(method, path string, q url.Values, body []byte, out any) error {
	resp, err := c.roundTrip(method, path, q, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("remote: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return serve.DecodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("remote: decoding %s response: %w", path, err)
	}
	return nil
}

// get is call for parameterless-body GET queries.
func (c *client) get(path string, q url.Values, out any) error {
	return c.call(http.MethodGet, path, q, nil, out)
}

// Dial connects to a v6class serve instance and returns its census as an
// Engine. The dial itself performs one /v1/meta request, so a bad URL or
// an unknown snapshot fails fast rather than on first query.
//
// The returned Engine answers every query over the wire against the
// server's currently installed snapshot generation; enumerations that span
// multiple pages restart transparently (up to the retry budget) if a
// reload lands mid-stream, so an iterator never yields a mix of two
// generations.
func Dial(baseURL string, opts ...Option) (*Engine, error) {
	c := &client{
		base:     strings.TrimRight(baseURL, "/"),
		hc:       nil,
		timeout:  30 * time.Second,
		retries:  2,
		pageSize: 1000,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		c.hc = &http.Client{Timeout: c.timeout}
	}
	e := &Engine{c: c}
	meta, err := e.meta()
	if err != nil {
		return nil, err
	}
	e.studyDays = meta.StudyDays
	e.frozen.Store(true)
	return e, nil
}
