package remote

import (
	"fmt"
	"io"
	"iter"
	"sort"
	"time"

	"v6class"
)

// The cluster tier's scatter-gather side: a Coordinator composes several
// backends — each holding a disjoint key partition of one census — into a
// single v6class.Engine. Counts sum, histograms add element-wise, point
// queries route to the partition owner, rankings re-rank after a map
// merge, and ordered enumerations k-way merge the per-backend ordered
// streams, so the composed engine answers byte-identically to a single
// box holding the whole census.

// Partition maps a key (an address as a /128, a subnet key as a /64) to
// the index of the backend that owns it. A partition function must send an
// address and its enclosing /64 to the same backend — per-/64 analyses
// (LookupAddr's prefix64 half, the Addrs64 tally) are computed backend-
// locally and would silently fracture otherwise.
type Partition func(p v6class.Prefix) int

// PartitionByNetworkID partitions by a multiplicative hash of the key's
// top-64 network identifier across n backends. Hashing the network bits —
// never the interface identifier — colocates an address with its /64 by
// construction, and the golden-ratio multiplier spreads sequentially
// assigned prefixes evenly.
func PartitionByNetworkID(n int) Partition {
	return func(p v6class.Prefix) int {
		return int((p.Addr().NetworkID() * 0x9E3779B97F4A7C15) % uint64(n))
	}
}

// SplitLogs partitions daily logs for an n-backend cluster: result[i]
// holds, for every input day, the records owned by backend i. Feed each
// slice to the matching backend (directly or through a remote Engine) and
// the cluster ingests the same census a single box would.
func SplitLogs(logs []v6class.DayLog, n int, part Partition) [][]v6class.DayLog {
	out := make([][]v6class.DayLog, n)
	for _, l := range logs {
		buckets := make([][]v6class.Record, n)
		for _, rec := range l.Records {
			i := part(v6class.PrefixFrom(rec.Addr, 64))
			buckets[i] = append(buckets[i], rec)
		}
		for i, recs := range buckets {
			out[i] = append(out[i], v6class.DayLog{Day: l.Day, Records: recs})
		}
	}
	return out
}

// Coordinator is the scatter-gather Engine over a partitioned cluster.
// Construct with NewCoordinator; every backend must hold a disjoint key
// partition under the same Partition function (ingest through AddDays or
// SplitLogs and this holds by construction).
type Coordinator struct {
	backends []v6class.Engine
	part     Partition
	study    int

	// The resilience policy (resilience.go): per-backend breakers, the
	// fan-out deadline, hedged point queries, and the strict/degraded
	// merge mode.
	breakers      []*breaker
	breakerPolicy BreakerPolicy
	fanout        time.Duration
	hedge         time.Duration
	partial       bool
}

var _ v6class.Engine = (*Coordinator)(nil)

// defaultFanoutTimeout bounds a scatter-gather whose caller configured
// nothing: generous enough for a full ordered-enumeration page walk on a
// loaded cluster, short enough that a hung backend cannot wedge a query
// forever.
const defaultFanoutTimeout = 30 * time.Second

// NewCoordinator composes backends into one Engine. part decides key
// ownership; nil defaults to PartitionByNetworkID over the backend count.
// The backends must agree on the study period — a mixed-period cluster
// would silently truncate day-ranged queries on some partitions.
//
// The default resilience posture is strict: any backend failure fails the
// query with an error naming the backend, answers are always byte-identical
// to a single box holding the whole census, per-backend circuit breakers
// stop hammering a dead partition, and a 30s fan-out deadline bounds every
// scatter. See WithPartialResults, WithFanoutTimeout, WithHedge and
// WithBreaker to tune.
func NewCoordinator(backends []v6class.Engine, part Partition, opts ...CoordinatorOption) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("%w: a coordinator needs at least one backend", v6class.ErrConfig)
	}
	study := backends[0].StudyDays()
	for i, b := range backends {
		if b.StudyDays() != study {
			return nil, fmt.Errorf("%w: backend %d has a %d-day study period, backend 0 has %d",
				v6class.ErrConfig, i, b.StudyDays(), study)
		}
	}
	if part == nil {
		part = PartitionByNetworkID(len(backends))
	}
	c := &Coordinator{backends: backends, part: part, study: study, fanout: defaultFanoutTimeout}
	for _, o := range opts {
		o(c)
	}
	c.breakers = make([]*breaker, len(backends))
	for i := range c.breakers {
		c.breakers[i] = newBreaker(c.breakerPolicy)
	}
	return c, nil
}

// NumBackends returns the cluster fan-out; the serve layer reports it as
// the meta endpoint's shards field.
func (c *Coordinator) NumBackends() int { return len(c.backends) }

// scatterLimit bounds how many backends one gather queries at once.
const scatterLimit = 8

// sumScatter gathers one integer per backend and sums — the shape of every
// disjoint-partition count. In degraded mode the sum covers the answering
// partitions and err carries the Coverage.
func (c *Coordinator) sumScatter(fn func(b v6class.Engine) (int, error)) (int, error) {
	counts, err := gather(c, func(_ int, b v6class.Engine) (int, error) { return fn(b) })
	if !degradedOnly(err) {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, err
}

func (c *Coordinator) StudyDays() int { return c.study }

// Shards returns the backend count: the coordinator's unit of parallel
// sweep is a whole backend.
func (c *Coordinator) Shards() int { return len(c.backends) }

// Frozen reports whether every backend is frozen.
func (c *Coordinator) Frozen() bool {
	for _, b := range c.backends {
		if !b.Frozen() {
			return false
		}
	}
	return true
}

func (c *Coordinator) AddDay(log v6class.DayLog) error {
	return c.AddDays([]v6class.DayLog{log})
}

// AddDays partitions the batch with the coordinator's Partition function
// and ingests each slice into its owning backend, in parallel. Writes
// never degrade — a partially ingested batch is quiet data loss — and a
// failure names every backend that refused (index plus base URL when the
// backend is a remote.Engine), so operators know which partition to fix.
func (c *Coordinator) AddDays(logs []v6class.DayLog) error {
	split := SplitLogs(logs, len(c.backends), c.part)
	_, err := gatherStrict(c, func(i int, b v6class.Engine) (struct{}, error) {
		return struct{}{}, b.AddDays(split[i])
	})
	return err
}

func (c *Coordinator) Ingest(logs <-chan v6class.DayLog) error {
	for l := range logs {
		if err := c.AddDay(l); err != nil {
			// Keep draining so producers never block on a channel nobody
			// reads; the first refusal is the verdict.
			for range logs {
			}
			return err
		}
	}
	return nil
}

func (c *Coordinator) Freeze() error {
	// A write: strict like AddDays, with failures naming their backend.
	_, err := gatherStrict(c, func(_ int, b v6class.Engine) (struct{}, error) {
		return struct{}{}, b.Freeze()
	})
	return err
}

// WriteTo refuses: the census is partitioned across backends and a single
// snapshot file would misrepresent it. Serialize each backend instead.
func (c *Coordinator) WriteTo(w io.Writer) (int64, error) {
	return 0, fmt.Errorf("%w: cluster coordinator cannot serialize a partitioned census; snapshot each backend", v6class.ErrConfig)
}

// Save refuses for the same reason as WriteTo.
func (c *Coordinator) Save(path string) error {
	_, err := c.WriteTo(nil)
	return err
}

// Summary merges the per-backend Table 1 tallies. Address-keyed counts are
// exact (each address lives in exactly one partition); the MACs tally is
// an upper bound — a hardware address roaming across /64s in different
// partitions counts once per partition.
func (c *Coordinator) Summary(day int) (v6class.DaySummary, error) {
	sums, err := gather(c, func(_ int, b v6class.Engine) (v6class.DaySummary, error) {
		return b.Summary(day)
	})
	if !degradedOnly(err) {
		return v6class.DaySummary{}, err
	}
	out := v6class.DaySummary{Day: day, ByKind: map[v6class.Kind]int{}}
	for _, s := range sums {
		out.Total += s.Total
		out.Native += s.Native
		out.Addrs64 += s.Addrs64
		out.MACs += s.MACs
		for k, n := range s.ByKind {
			out.ByKind[k] += n
		}
	}
	return out, err
}

func (c *Coordinator) NumKeys(pop v6class.Population) (int, error) {
	return c.sumScatter(func(b v6class.Engine) (int, error) { return b.NumKeys(pop) })
}

func (c *Coordinator) ActiveCount(pop v6class.Population, day int) (int, error) {
	return c.sumScatter(func(b v6class.Engine) (int, error) { return b.ActiveCount(pop, day) })
}

func (c *Coordinator) ActiveInRange(pop v6class.Population, from, to int) (int, error) {
	return c.sumScatter(func(b v6class.Engine) (int, error) { return b.ActiveInRange(pop, from, to) })
}

func (c *Coordinator) Stability(pop v6class.Population, ref, n int) (v6class.DailyStability, error) {
	stats, err := gather(c, func(_ int, b v6class.Engine) (v6class.DailyStability, error) {
		return b.Stability(pop, ref, n)
	})
	return mergeDaily(stats, ref, n), err
}

func (c *Coordinator) StabilityWith(pop v6class.Population, ref, n int, opts v6class.StabilityOptions) (v6class.DailyStability, error) {
	stats, err := gather(c, func(_ int, b v6class.Engine) (v6class.DailyStability, error) {
		return b.StabilityWith(pop, ref, n, opts)
	})
	return mergeDaily(stats, ref, n), err
}

func mergeDaily(stats []v6class.DailyStability, ref, n int) v6class.DailyStability {
	out := v6class.DailyStability{Ref: v6class.Day(ref), N: n}
	for _, s := range stats {
		out.Active += s.Active
		out.Stable += s.Stable
		out.NotStable += s.NotStable
	}
	return out
}

func (c *Coordinator) WeeklyStability(pop v6class.Population, start, n int) (v6class.WeeklyStability, error) {
	stats, err := gather(c, func(_ int, b v6class.Engine) (v6class.WeeklyStability, error) {
		return b.WeeklyStability(pop, start, n)
	})
	out := v6class.WeeklyStability{Start: v6class.Day(start), N: n}
	for _, s := range stats {
		out.Active += s.Active
		out.Stable += s.Stable
		out.NotStable += s.NotStable
	}
	return out, err
}

func (c *Coordinator) EpochStable(pop v6class.Population, aFrom, aTo, bFrom, bTo int) (int, error) {
	return c.sumScatter(func(b v6class.Engine) (int, error) {
		return b.EpochStable(pop, aFrom, aTo, bFrom, bTo)
	})
}

// Point queries route to the partition owner through pointCall — the
// owner's circuit breaker plus the optional hedged second attempt — and
// never degrade: no other backend holds the answer.

func (c *Coordinator) LookupAddr(a v6class.Addr) (v6class.AddrLookup, error) {
	return pointCall(c, v6class.PrefixFrom(a, 64), func(b v6class.Engine) (v6class.AddrLookup, error) {
		return b.LookupAddr(a)
	})
}

func (c *Coordinator) LookupPrefix64(p v6class.Prefix) (v6class.KeyReport, error) {
	return pointCall(c, p, func(b v6class.Engine) (v6class.KeyReport, error) {
		return b.LookupPrefix64(p)
	})
}

func (c *Coordinator) AddrStable(a v6class.Addr, ref, n int, opts v6class.StabilityOptions) (bool, error) {
	return pointCall(c, v6class.PrefixFrom(a, 64), func(b v6class.Engine) (bool, error) {
		return b.AddrStable(a, ref, n, opts)
	})
}

func (c *Coordinator) Prefix64Stable(p v6class.Prefix, ref, n int, opts v6class.StabilityOptions) (bool, error) {
	return pointCall(c, p, func(b v6class.Engine) (bool, error) {
		return b.Prefix64Stable(p, ref, n, opts)
	})
}

// LifetimeStats merges per-backend lifetime statistics: counts sum,
// histograms add element-wise (padded to the longest).
func (c *Coordinator) LifetimeStats(pop v6class.Population, from, to int) (v6class.LifetimeStats, error) {
	stats, err := gather(c, func(_ int, b v6class.Engine) (v6class.LifetimeStats, error) {
		return b.LifetimeStats(pop, from, to)
	})
	if !degradedOnly(err) {
		return v6class.LifetimeStats{}, err
	}
	var out v6class.LifetimeStats
	for _, s := range stats {
		out.Keys += s.Keys
		out.SingleDay += s.SingleDay
		out.SpanHistogram = addHist(out.SpanHistogram, s.SpanHistogram)
		out.ActiveDaysHistogram = addHist(out.ActiveDaysHistogram, s.ActiveDaysHistogram)
	}
	return out, err
}

// addHist adds b into a element-wise, growing a as needed.
func addHist(a, b []int) []int {
	if len(b) > len(a) {
		grown := make([]int, len(b))
		copy(grown, a)
		a = grown
	}
	for i, n := range b {
		a[i] += n
	}
	return a
}

// ReturnProbability sums the per-backend return and opportunity tallies —
// which are additive across disjoint partitions, unlike the ratios — and
// divides once.
func (c *Coordinator) ReturnProbability(pop v6class.Population, from, to, maxGap int) ([]float64, error) {
	num, den, err := c.ReturnCounts(pop, from, to, maxGap)
	if !degradedOnly(err) {
		return nil, err
	}
	out := make([]float64, len(num))
	for g := 1; g < len(num); g++ {
		if den[g] > 0 {
			out[g] = float64(num[g]) / float64(den[g])
		}
	}
	return out, err
}

func (c *Coordinator) ReturnCounts(pop v6class.Population, from, to, maxGap int) (num, den []int, err error) {
	type counts struct{ num, den []int }
	all, err := gather(c, func(_ int, b v6class.Engine) (counts, error) {
		n, d, err := b.ReturnCounts(pop, from, to, maxGap)
		return counts{n, d}, err
	})
	if !degradedOnly(err) {
		return nil, nil, err
	}
	for _, ct := range all {
		num = addHist(num, ct.num)
		den = addHist(den, ct.den)
	}
	return num, den, err
}

// LongestStablePrefixes runs the Section 7.2 discovery over the merged
// ordered address streams of the two periods — the per-backend results
// cannot be combined (a stable prefix may span partitions), but the merged
// streams feed the same trie walk a single box runs.
func (c *Coordinator) LongestStablePrefixes(aFrom, aTo, bFrom, bTo, minBits int, minSupport uint64) ([]v6class.LongestStablePrefix, error) {
	periodA, errA := c.orderedAddrsInRange(aFrom, aTo)
	if !degradedOnly(errA) {
		return nil, errA
	}
	periodB, errB := c.orderedAddrsInRange(bFrom, bTo)
	if !degradedOnly(errB) {
		return nil, errB
	}
	return v6class.LongestStablePrefixesFrom(periodA, periodB, minBits, minSupport), firstDegraded(errA, errB)
}

// rangeDays expands an inclusive day range into the explicit selection the
// ordered enumerations take.
func rangeDays(from, to int) []int {
	if to < from {
		return nil
	}
	days := make([]int, 0, to-from+1)
	for d := from; d <= to; d++ {
		days = append(days, d)
	}
	return days
}

// orderedAddrsInRange merges the per-backend ordered sweeps of addresses
// active in the inclusive day range. An empty range is an empty stream.
func (c *Coordinator) orderedAddrsInRange(from, to int) (iter.Seq[v6class.Addr], error) {
	if to < from {
		return func(yield func(v6class.Addr) bool) {}, nil
	}
	return c.mergedAddrs(func(b v6class.Engine) (iter.Seq[v6class.Addr], error) {
		seq, err := b.KeysOrdered(v6class.Addresses, rangeDays(from, to)...)
		if err != nil {
			return nil, err
		}
		return addrsOf(seq), nil
	})
}

// addrsOf views an ordered /128 key stream as an address stream.
func addrsOf(seq iter.Seq[v6class.Prefix]) iter.Seq[v6class.Addr] {
	return func(yield func(v6class.Addr) bool) {
		for p := range seq {
			if !yield(p.Addr()) {
				return
			}
		}
	}
}

// mergedAddrs gathers one ordered address stream per backend and k-way
// merges them; partitions are disjoint, so the merge never deduplicates.
// In degraded mode the merge spans the answering backends only and err
// carries the Coverage.
func (c *Coordinator) mergedAddrs(fn func(b v6class.Engine) (iter.Seq[v6class.Addr], error)) (iter.Seq[v6class.Addr], error) {
	seqs, err := gather(c, func(_ int, b v6class.Engine) (iter.Seq[v6class.Addr], error) { return fn(b) })
	if !degradedOnly(err) {
		return nil, err
	}
	return v6class.MergeOrdered(v6class.Addr.Cmp, seqs...), err
}

// mergedKeys is mergedAddrs for prefix-keyed streams.
func (c *Coordinator) mergedKeys(fn func(b v6class.Engine) (iter.Seq[v6class.Prefix], error)) (iter.Seq[v6class.Prefix], error) {
	seqs, err := gather(c, func(_ int, b v6class.Engine) (iter.Seq[v6class.Prefix], error) { return fn(b) })
	if !degradedOnly(err) {
		return nil, err
	}
	return v6class.MergeOrdered(v6class.Prefix.Cmp, seqs...), err
}

func (c *Coordinator) StableAddrs(ref, n int) (iter.Seq[v6class.Addr], error) {
	return c.StableAddrsOrdered(ref, n)
}

func (c *Coordinator) StableAddrsOrdered(ref, n int) (iter.Seq[v6class.Addr], error) {
	return c.mergedAddrs(func(b v6class.Engine) (iter.Seq[v6class.Addr], error) {
		return b.StableAddrsOrdered(ref, n)
	})
}

func (c *Coordinator) StableAddrsOrderedAfter(ref, n int, after v6class.Addr) (iter.Seq[v6class.Addr], error) {
	return c.mergedAddrs(func(b v6class.Engine) (iter.Seq[v6class.Addr], error) {
		return b.StableAddrsOrderedAfter(ref, n, after)
	})
}

func (c *Coordinator) AddrsActiveOn(days ...int) (iter.Seq[v6class.Addr], error) {
	return c.mergedAddrs(func(b v6class.Engine) (iter.Seq[v6class.Addr], error) {
		seq, err := b.KeysOrdered(v6class.Addresses, days...)
		if err != nil {
			return nil, err
		}
		return addrsOf(seq), nil
	})
}

func (c *Coordinator) Prefixes64ActiveOn(days ...int) (iter.Seq[v6class.Prefix], error) {
	return c.KeysOrdered(v6class.Prefixes64, days...)
}

func (c *Coordinator) Keys(pop v6class.Population) (iter.Seq[v6class.Prefix], error) {
	return c.KeysOrdered(pop)
}

func (c *Coordinator) KeysOrdered(pop v6class.Population, days ...int) (iter.Seq[v6class.Prefix], error) {
	return c.mergedKeys(func(b v6class.Engine) (iter.Seq[v6class.Prefix], error) {
		return b.KeysOrdered(pop, days...)
	})
}

func (c *Coordinator) KeysOrderedAfter(pop v6class.Population, after v6class.Prefix, days ...int) (iter.Seq[v6class.Prefix], error) {
	return c.mergedKeys(func(b v6class.Engine) (iter.Seq[v6class.Prefix], error) {
		return b.KeysOrderedAfter(pop, after, days...)
	})
}

func (c *Coordinator) Lifetimes(pop v6class.Population) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	return c.LifetimesOrdered(pop)
}

// keyedActivity pairs a key with its activity for the Seq2 merge.
type keyedActivity struct {
	p   v6class.Prefix
	act v6class.Activity
}

func cmpKeyedActivity(a, b keyedActivity) int { return a.p.Cmp(b.p) }

func (c *Coordinator) LifetimesOrdered(pop v6class.Population) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	return c.mergedLifetimes(func(b v6class.Engine) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
		return b.LifetimesOrdered(pop)
	})
}

func (c *Coordinator) LifetimesOrderedAfter(pop v6class.Population, after v6class.Prefix) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	return c.mergedLifetimes(func(b v6class.Engine) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
		return b.LifetimesOrderedAfter(pop, after)
	})
}

func (c *Coordinator) mergedLifetimes(fn func(b v6class.Engine) (iter.Seq2[v6class.Prefix, v6class.Activity], error)) (iter.Seq2[v6class.Prefix, v6class.Activity], error) {
	seqs, err := gather(c, func(_ int, b v6class.Engine) (iter.Seq[keyedActivity], error) {
		seq2, err := fn(b)
		if err != nil {
			return nil, err
		}
		return func(yield func(keyedActivity) bool) {
			for p, act := range seq2 {
				if !yield(keyedActivity{p, act}) {
					return
				}
			}
		}, nil
	})
	if !degradedOnly(err) {
		return nil, err
	}
	merged := v6class.MergeOrdered(cmpKeyedActivity, seqs...)
	return func(yield func(v6class.Prefix, v6class.Activity) bool) {
		for ka := range merged {
			if !yield(ka.p, ka.act) {
				return
			}
		}
	}, err
}

// SpatialSet rebuilds the spatial population from the merged ordered key
// stream; the trie shape is a pure function of the item set, so the result
// matches a single box building it.
func (c *Coordinator) SpatialSet(pop v6class.Population, days ...int) (*v6class.AddressSet, error) {
	seq, err := c.KeysOrdered(pop, days...)
	if !degradedOnly(err) {
		return nil, err
	}
	set := &v6class.AddressSet{}
	for p := range seq {
		if pop == v6class.Prefixes64 {
			set.AddPrefix(p)
		} else {
			set.Add(p.Addr())
		}
	}
	return set, err
}

// TopAggregates gathers every backend's complete /p ranking and re-ranks
// after a map merge: a /p aggregate can span partitions (only /64s and
// finer are partition-local), so per-backend top-k lists cannot be merged
// directly. Ties re-rank in prefix order — the same deterministic total
// order every engine uses.
func (c *Coordinator) TopAggregates(pop v6class.Population, p, k int, days ...int) (iter.Seq[v6class.TopAggregate], error) {
	all, err := gather(c, func(_ int, b v6class.Engine) ([]v6class.TopAggregate, error) {
		seq, err := b.TopAggregates(pop, p, 0, days...)
		if err != nil {
			return nil, err
		}
		var out []v6class.TopAggregate
		for agg := range seq {
			out = append(out, agg)
		}
		return out, nil
	})
	if !degradedOnly(err) {
		return nil, err
	}
	counts := map[v6class.Prefix]uint64{}
	for _, aggs := range all {
		for _, agg := range aggs {
			counts[agg.Prefix] += agg.Count
		}
	}
	merged := make([]v6class.TopAggregate, 0, len(counts))
	for pfx, n := range counts {
		merged = append(merged, v6class.TopAggregate{Prefix: pfx, Count: n})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Prefix.Cmp(merged[j].Prefix) < 0
	})
	if k > 0 && len(merged) > k {
		merged = merged[:k]
	}
	return sliceSeq(merged), err
}

// OverlapSeries sums the per-backend overlap curves day by day.
func (c *Coordinator) OverlapSeries(pop v6class.Population, ref, before, after int) (iter.Seq2[int, int], error) {
	series, err := gather(c, func(_ int, b v6class.Engine) ([]int, error) {
		seq, err := b.OverlapSeries(pop, ref, before, after)
		if err != nil {
			return nil, err
		}
		var out []int
		for _, n := range seq {
			out = append(out, n)
		}
		return out, nil
	})
	if !degradedOnly(err) {
		return nil, err
	}
	var sum []int
	for _, s := range series {
		sum = addHist(sum, s)
	}
	first := ref - before
	return func(yield func(int, int) bool) {
		for i, n := range sum {
			if !yield(first+i, n) {
				return
			}
		}
	}, err
}
