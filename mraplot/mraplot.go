// Package mraplot renders Multi-Resolution Aggregate plots — the
// visualization introduced by Plonka & Berger (IMC 2015, Section 5.2.1) —
// without external plotting libraries. A plot shows aggregate count ratios
// on a log2 vertical scale against prefix length, at single-bit, 4-bit
// (nybble), and 16-bit (colon-segment) resolutions, exposing the density or
// sparsity of each segment of an address population.
//
// Three renderers are provided: data series (for external tooling), a
// fixed-width ASCII chart (for terminals and the repository's reports), and
// a standalone SVG document.
package mraplot

import (
	"fmt"
	"math"
	"strings"

	"v6class/internal/spatial"
)

// Plot is a renderable MRA plot: a title and the three canonical series.
type Plot struct {
	Title  string
	Bits   []spatial.RatioPoint // k=1, "single bits"
	Nybble []spatial.RatioPoint // k=4, "4-bit segments"
	Seg16  []spatial.RatioPoint // k=16, "16-bit segments"
}

// New builds a Plot from a population's MRA counts.
func New(title string, m spatial.MRA) Plot {
	return Plot{
		Title:  title,
		Bits:   m.Series(1),
		Nybble: m.Series(4),
		Seg16:  m.Series(16),
	}
}

// DataRows renders the plot's underlying values as tab-separated rows
// (p, k, ratio), one row per point, suitable for gnuplot or spreadsheet
// import.
func (p Plot) DataRows() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# p\tk\tratio\n", p.Title)
	for _, series := range []struct {
		k   int
		pts []spatial.RatioPoint
	}{{1, p.Bits}, {4, p.Nybble}, {16, p.Seg16}} {
		for _, pt := range series.pts {
			fmt.Fprintf(&b, "%d\t%d\t%.6g\n", pt.P, series.k, pt.Ratio)
		}
	}
	return b.String()
}

// ASCII renders the plot as a fixed-width chart: the vertical axis is
// log2(ratio) from 0 (ratio 1) to 16 (ratio 65536), the horizontal axis is
// prefix length 0..128. Series markers: '.' single bits, 'o' 4-bit, '#'
// 16-bit (later series overwrite earlier at shared cells).
func (p Plot) ASCII() string {
	const (
		width  = 65 // one column per 2 bits, plus axis
		height = 17 // one row per log2 unit: 2^0 .. 2^16
	)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(pts []spatial.RatioPoint, k int, marker byte) {
		for _, pt := range pts {
			if pt.Ratio < 1 {
				continue // empty population
			}
			row := int(math.Round(math.Log2(pt.Ratio)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			// Mark every column the segment [p, p+k) spans so coarse
			// resolutions draw as steps, like the paper's plots.
			for x := pt.P; x < pt.P+k; x += 2 {
				col := x / 2
				if col >= width {
					col = width - 1
				}
				grid[height-1-row][col] = marker
			}
		}
	}
	plot(p.Bits, 1, '.')
	plot(p.Nybble, 4, 'o')
	plot(p.Seg16, 16, '#')

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	fmt.Fprintf(&b, "ratio (log2)  [#]=16-bit [o]=4-bit [.]=single bits\n")
	for i, row := range grid {
		fmt.Fprintf(&b, "%6d |%s\n", 1<<(height-1-i), row)
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        0       16      32      48      64      80      96      112     128\n")
	return b.String()
}

// SVG renders the plot as a standalone SVG document with a log2 y-axis,
// polyline per series, and the paper's axis conventions.
func (p Plot) SVG() string {
	const (
		w, h           = 640, 420
		mLeft, mBottom = 60, 40
		mTop, mRight   = 30, 20
	)
	plotW, plotH := float64(w-mLeft-mRight), float64(h-mTop-mBottom)
	x := func(bit int) float64 { return float64(mLeft) + plotW*float64(bit)/128 }
	y := func(ratio float64) float64 {
		if ratio < 1 {
			ratio = 1
		}
		return float64(mTop) + plotH*(1-math.Log2(ratio)/16)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14">%s</text>`+"\n", mLeft, xmlEscape(p.Title))
	// Axes and gridlines.
	for e := 0; e <= 16; e += 2 {
		yy := y(math.Pow(2, float64(e)))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", mLeft, yy, w-mRight, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%d</text>`+"\n", mLeft-6, yy+4, 1<<e)
	}
	for bit := 0; bit <= 128; bit += 16 {
		xx := x(bit)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", xx, mTop, xx, h-mBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%d</text>`+"\n", xx, h-mBottom+16, bit)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">Prefix length (p)</text>`+"\n", mLeft+int(plotW/2), h-6)

	series := []struct {
		pts   []spatial.RatioPoint
		k     int
		color string
		name  string
	}{
		{p.Seg16, 16, "#cc2222", "16-bit segments"},
		{p.Nybble, 4, "#222222", "4-bit segments"},
		{p.Bits, 1, "#2244cc", "single bits"},
	}
	for si, s := range series {
		var pb strings.Builder
		for _, pt := range s.pts {
			// Draw each segment as a horizontal step across [p, p+k).
			fmt.Fprintf(&pb, "%.1f,%.1f %.1f,%.1f ", x(pt.P), y(pt.Ratio), x(pt.P+s.k), y(pt.Ratio))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(pb.String()), s.color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s">%s</text>`+"\n",
			w-mRight-130, mTop+14+14*si, s.color, s.name)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
