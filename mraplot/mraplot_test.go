package mraplot

import (
	"math/rand"
	"strings"
	"testing"

	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
)

func samplePlot(t *testing.T) Plot {
	t.Helper()
	var s spatial.AddressSet
	r := rand.New(rand.NewSource(5))
	net := ipaddr.MustParseAddr("2001:db8::")
	for i := 0; i < 2000; i++ {
		s.Add(net.WithIID(r.Uint64() &^ (1 << 57)))
	}
	return New("test population", s.MRA())
}

func TestNewPlotSeries(t *testing.T) {
	p := samplePlot(t)
	if len(p.Bits) != 128 {
		t.Errorf("bits series = %d points", len(p.Bits))
	}
	if len(p.Nybble) != 32 {
		t.Errorf("nybble series = %d points", len(p.Nybble))
	}
	if len(p.Seg16) != 8 {
		t.Errorf("seg16 series = %d points", len(p.Seg16))
	}
}

func TestDataRows(t *testing.T) {
	p := samplePlot(t)
	rows := p.DataRows()
	if !strings.HasPrefix(rows, "# test population\n") {
		t.Error("missing title comment")
	}
	lines := strings.Split(strings.TrimSpace(rows), "\n")
	// 2 comment lines + 128 + 32 + 8 data rows.
	if len(lines) != 2+128+32+8 {
		t.Errorf("rows = %d lines", len(lines))
	}
	if !strings.Contains(rows, "\t16\t") {
		t.Error("missing k=16 rows")
	}
}

func TestASCII(t *testing.T) {
	p := samplePlot(t)
	art := p.ASCII()
	if !strings.Contains(art, "test population") {
		t.Error("missing title")
	}
	// Must contain all three markers for this population.
	for _, marker := range []string{".", "o", "#"} {
		if !strings.Contains(art, marker) {
			t.Errorf("marker %q absent", marker)
		}
	}
	// Axis labels.
	if !strings.Contains(art, "65536") || !strings.Contains(art, "128") {
		t.Error("axis labels missing")
	}
	// Fixed shape: every grid row same width.
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) < 20 {
		t.Errorf("ASCII plot has %d lines", len(lines))
	}
}

func TestSVG(t *testing.T) {
	p := samplePlot(t)
	svg := p.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if strings.Count(svg, "<polyline") != 3 {
		t.Errorf("want 3 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	for _, legend := range []string{"16-bit segments", "4-bit segments", "single bits"} {
		if !strings.Contains(svg, legend) {
			t.Errorf("legend %q missing", legend)
		}
	}
}

func TestXMLEscapeInTitle(t *testing.T) {
	var s spatial.AddressSet
	s.Add(ipaddr.MustParseAddr("2001:db8::1"))
	p := New(`a <b> & "c"`, s.MRA())
	svg := p.SVG()
	if strings.Contains(svg, "<b>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;b&gt;") {
		t.Error("escaped title missing")
	}
}

func TestEmptyPopulationPlots(t *testing.T) {
	var s spatial.AddressSet
	p := New("empty", s.MRA())
	// Must not panic and must produce structurally valid output.
	if out := p.ASCII(); !strings.Contains(out, "empty") {
		t.Error("ASCII of empty population broken")
	}
	if out := p.SVG(); !strings.Contains(out, "</svg>") {
		t.Error("SVG of empty population broken")
	}
}
