package v6class_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"v6class"
)

// TestSnapshotFormats drives the façade's format surface: Save emits v2,
// SaveSnapshot selects either format, SniffSnapshot identifies both, and an
// engine opened from either format re-serializes to identical bytes.
func TestSnapshotFormats(t *testing.T) {
	eng := buildLocal(t, v6class.WithSequential())
	dir := t.TempDir()
	v2Path := filepath.Join(dir, "census.v2")
	v1Path := filepath.Join(dir, "census.v1")
	if err := eng.Save(v2Path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := v6class.SaveSnapshot(eng, v1Path, v6class.FormatV1); err != nil {
		t.Fatalf("SaveSnapshot(v1): %v", err)
	}

	for path, wantVersion := range map[string]int{v2Path: 2, v1Path: 1} {
		info, err := v6class.SniffSnapshot(path)
		if err != nil {
			t.Fatalf("SniffSnapshot(%s): %v", path, err)
		}
		if info.Version != wantVersion {
			t.Errorf("%s: version %d, want %d", path, info.Version, wantVersion)
		}
		fi, _ := os.Stat(path)
		if info.Size != fi.Size() {
			t.Errorf("%s: size %d, want %d", path, info.Size, fi.Size())
		}
	}

	fromV2, err := v6class.Open(v2Path, v6class.WithSequential())
	if err != nil {
		t.Fatalf("Open(v2): %v", err)
	}
	fromV1, err := v6class.Open(v1Path, v6class.WithSequential())
	if err != nil {
		t.Fatalf("Open(v1): %v", err)
	}
	for _, e := range []v6class.Engine{fromV2, fromV1} {
		if err := e.Freeze(); err != nil {
			t.Fatalf("Freeze: %v", err)
		}
	}
	for _, pop := range []v6class.Population{v6class.Addresses, v6class.Prefixes64} {
		a, _ := fromV2.NumKeys(pop)
		b, _ := fromV1.NumKeys(pop)
		if a != b {
			t.Errorf("population %d: %d keys from v2, %d from v1", pop, a, b)
		}
	}
	sa, err := fromV2.Stability(v6class.Addresses, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := fromV1.Stability(v6class.Addresses, 14, 3)
	if sa != sb {
		t.Errorf("stability diverges across formats: %+v vs %+v", sa, sb)
	}

	// Byte identity: whichever format an engine was opened from, it must
	// re-serialize to the same snapshots.
	var a2, b2 bytes.Buffer
	if _, err := fromV2.WriteTo(&a2); err != nil {
		t.Fatal(err)
	}
	if _, err := fromV1.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a2.Bytes(), b2.Bytes()) {
		t.Error("v2 snapshots from v2- and v1-opened engines differ")
	}
	onDisk, err := os.ReadFile(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a2.Bytes(), onDisk) {
		t.Error("reopened engine writes different v2 bytes than the original save")
	}
	var a1 bytes.Buffer
	if _, err := v6class.WriteSnapshot(fromV2, &a1, v6class.FormatV1); err != nil {
		t.Fatal(err)
	}
	v1OnDisk, err := os.ReadFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1.Bytes(), v1OnDisk) {
		t.Error("v2-opened engine writes different v1 bytes than the original save")
	}

	// Remote engines stream their backend's snapshot; asking them for the
	// legacy format is a config error.
	re := serveEngine(t, eng)
	if _, err := v6class.WriteSnapshot(re, io.Discard, v6class.FormatV1); !errors.Is(err, v6class.ErrConfig) {
		t.Errorf("WriteSnapshot(remote, v1) = %v, want ErrConfig", err)
	}

	// Sniffing a non-snapshot fails.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("#day 3\n2001:db8::1 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := v6class.SniffSnapshot(junk); err == nil {
		t.Error("SniffSnapshot accepted a text file")
	}
}

// TestOpenV2ExtendAndResave exercises the daily-pipeline loop through the
// mmap path: open a v2 snapshot, ingest another day, save, reopen — and
// match a census built in one pass.
func TestOpenV2ExtendAndResave(t *testing.T) {
	logs := confLogs()
	half, rest := logs[:confStudyDays/2], logs[confStudyDays/2:]

	mk := func() v6class.Engine {
		eng, err := v6class.New(v6class.WithStudyDays(confStudyDays), v6class.WithSequential())
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	path := filepath.Join(t.TempDir(), "mid.v6census")
	partial := mk()
	if err := partial.AddDays(half); err != nil {
		t.Fatal(err)
	}
	if err := partial.Save(path); err != nil {
		t.Fatal(err)
	}

	resumed, err := v6class.Open(path, v6class.WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.AddDays(rest); err != nil {
		t.Fatal(err)
	}

	full := mk()
	if err := full.AddDays(logs); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := resumed.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := full.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshot-resumed census diverges from single-pass census")
	}
	if err := resumed.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := full.Freeze(); err != nil {
		t.Fatal(err)
	}
	ra, err := resumed.ActiveCount(v6class.Addresses, confStudyDays-1)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := full.ActiveCount(v6class.Addresses, confStudyDays-1)
	if ra != rb {
		t.Errorf("final-day active count %d, want %d", ra, rb)
	}
}
