package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestCCDFBasic(t *testing.T) {
	ccdf := CCDF([]float64{1, 1, 2, 5, 5, 5, 10})
	// Distinct values 1,2,5,10; proportions 7/7, 5/7, 4/7, 1/7.
	want := []CCDFPoint{
		{1, 1},
		{2, 5.0 / 7},
		{5, 4.0 / 7},
		{10, 1.0 / 7},
	}
	if len(ccdf) != len(want) {
		t.Fatalf("ccdf = %v", ccdf)
	}
	for i := range want {
		if ccdf[i].Value != want[i].Value || math.Abs(ccdf[i].Proportion-want[i].Proportion) > 1e-12 {
			t.Errorf("ccdf[%d] = %v, want %v", i, ccdf[i], want[i])
		}
	}
}

func TestCCDFEmptyAndSingle(t *testing.T) {
	if CCDF(nil) != nil {
		t.Error("CCDF(nil) should be nil")
	}
	one := CCDF([]float64{42})
	if len(one) != 1 || one[0].Value != 42 || one[0].Proportion != 1 {
		t.Errorf("CCDF single = %v", one)
	}
}

func TestCCDFAt(t *testing.T) {
	ccdf := CCDF([]float64{1, 2, 5, 10})
	cases := []struct {
		v    float64
		want float64
	}{
		{0, 1}, // below min: everything >= 0
		{1, 1},
		{1.5, 0.75}, // first value >= 1.5 is 2
		{5, 0.5},
		{10, 0.25},
		{11, 0},
	}
	for _, c := range cases {
		if got := CCDFAt(ccdf, c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CCDFAt(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestCCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	CCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("CCDF mutated its input")
	}
}

func TestCCDFMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = math.Floor(r.ExpFloat64() * 100)
	}
	ccdf := CCDF(samples)
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i].Value <= ccdf[i-1].Value {
			t.Fatal("values must be strictly increasing")
		}
		if ccdf[i].Proportion >= ccdf[i-1].Proportion {
			t.Fatal("proportions must be strictly decreasing")
		}
	}
	if ccdf[0].Proportion != 1 {
		t.Error("CCDF must start at proportion 1")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { Box(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBox(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i + 1) // 1..100
	}
	b := Box(s)
	if b.Min != 1 || b.Max != 100 || b.N != 100 {
		t.Errorf("Box extremes: %+v", b)
	}
	if math.Abs(b.Median-50.5) > 1e-9 {
		t.Errorf("median = %v", b.Median)
	}
	if b.P25 >= b.Median || b.Median >= b.P75 || b.P5 >= b.P25 || b.P75 >= b.P95 || b.P95 >= b.P99 {
		t.Errorf("box order violated: %+v", b)
	}
}

func TestMeanGeometricMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if GeometricMean(nil) != 0 {
		t.Error("GeometricMean(nil) should be 0")
	}
	if got := GeometricMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeometricMean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeometricMean of zero should panic")
		}
	}()
	GeometricMean([]float64{0})
}

func TestCounts(t *testing.T) {
	got := Counts([]uint64{1, 2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("Counts = %v", got)
	}
	got2 := Counts([]int{5})
	if got2[0] != 5 {
		t.Errorf("Counts int = %v", got2)
	}
}

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(100)
	want := []float64{1, 2, 5, 10, 20, 50, 100}
	if len(got) != len(want) {
		t.Fatalf("LogBuckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("LogBuckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := LogBuckets(0.5); len(got) != 1 || got[0] != 1 {
		t.Errorf("LogBuckets(0.5) = %v", got)
	}
	// Always ends at or beyond max.
	for _, max := range []float64{3, 7, 42, 1234567} {
		b := LogBuckets(max)
		if b[len(b)-1] < max {
			t.Errorf("LogBuckets(%v) ends at %v", max, b[len(b)-1])
		}
	}
}
