// Package stats provides the small statistical toolkit the measurement
// analyses need: complementary CDFs over counts, quantiles, and the
// box-plot summaries used by Figure 5b of Plonka & Berger (IMC 2015).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CCDFPoint is one point of a complementary cumulative distribution
// function: the proportion of samples with Value >= the given value.
type CCDFPoint struct {
	Value      float64
	Proportion float64
}

// CCDF computes the complementary CDF of the samples: for each distinct
// sample value v (ascending), the proportion of samples >= v. This matches
// the paper's "Complementary CDF Proportion" axes (Figures 3 and 5a), where
// every curve starts at proportion 1 for the minimum value.
//
// The input is not modified. An empty input yields nil.
func CCDF(samples []float64) []CCDFPoint {
	if len(samples) == 0 {
		return nil
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := float64(len(s))
	var out []CCDFPoint
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		out = append(out, CCDFPoint{Value: s[i], Proportion: float64(len(s)-i) / n})
		i = j
	}
	return out
}

// CCDFAt evaluates a CCDF (as returned by CCDF) at value v: the proportion
// of samples >= v. Values beyond the observed maximum give 0.
func CCDFAt(ccdf []CCDFPoint, v float64) float64 {
	// Find the first point with Value >= v; its proportion is the answer.
	i := sort.Search(len(ccdf), func(i int) bool { return ccdf[i].Value >= v })
	if i == len(ccdf) {
		return 0
	}
	return ccdf[i].Proportion
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples using linear
// interpolation between closest ranks. It panics on an empty sample set or
// an out-of-range q.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		panic("stats: Quantile of empty sample set")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// BoxSummary is the summary used for the paper's embellished box plots:
// median, middle 50% (quartiles), middle 90% (5th/95th percentiles), the
// 99th percentile, and the absolute extremes.
type BoxSummary struct {
	Min, P5, P25, Median, P75, P95, P99, Max float64
	N                                        int
}

// Box computes a BoxSummary. It panics on an empty sample set.
func Box(samples []float64) BoxSummary {
	if len(samples) == 0 {
		panic("stats: Box of empty sample set")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return BoxSummary{
		Min:    s[0],
		P5:     quantileSorted(s, 0.05),
		P25:    quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.50),
		P75:    quantileSorted(s, 0.75),
		P95:    quantileSorted(s, 0.95),
		P99:    quantileSorted(s, 0.99),
		Max:    s[len(s)-1],
		N:      len(s),
	}
}

// Mean returns the arithmetic mean; 0 for an empty set.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// GeometricMean returns the geometric mean of strictly positive samples;
// 0 for an empty set. It panics if any sample is <= 0.
func GeometricMean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range samples {
		if v <= 0 {
			panic("stats: GeometricMean of non-positive sample")
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(samples)))
}

// Counts converts integer counts to float64 samples, a common adapter for
// the CCDF/Box helpers.
func Counts[T ~int | ~int64 | ~uint64 | ~int32 | ~uint32](in []T) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

// LogBuckets builds logarithmically spaced bucket boundaries from 1 to at
// least max, base 10 with 1-2-5 subdivisions (1, 2, 5, 10, 20, 50, ...).
// Useful for rendering log-scale axes without a plotting library.
func LogBuckets(max float64) []float64 {
	if max < 1 {
		return []float64{1}
	}
	var out []float64
	for base := 1.0; ; base *= 10 {
		for _, m := range []float64{1, 2, 5} {
			v := base * m
			out = append(out, v)
			if v >= max {
				return out
			}
		}
	}
}
