// Package dnssim provides a synthetic ip6.arpa reverse DNS for the
// simulated world, supporting the Section 6.2.3 experiment of Plonka &
// Berger (IMC 2015): sweeping PTR queries across dense prefixes harvests
// domain names — location-bearing router names and host names such as the
// department's "dhcpv6-*" clients — well beyond the names of addresses
// already observed active.
package dnssim

import (
	"context"
	"fmt"
	"strings"

	"v6class/internal/ipaddr"
	"v6class/internal/netmodel"
	"v6class/probe"
)

// Zone is a populated reverse zone. Build one with NewZone.
type Zone struct {
	records map[ipaddr.Addr]string
}

// cityCodes gives routers location-bearing names, the property that makes
// PTR harvesting valuable to geolocation per the paper.
var cityCodes = []string{"nyc", "fra", "lon", "tyo", "syd", "ams", "sjc", "iad", "cdg", "sin"}

// NewZone synthesizes PTR records for the world:
//   - every router interface (responding or silent) gets a geo-coded name,
//   - the DHCPv6 department publishes "dhcpv6-N" names for its whole pool,
//   - resolver addresses get service names.
//
// Ordinary client addresses (privacy, mobile) have no PTR records, matching
// operational reality.
func NewZone(t *probe.Topology) *Zone {
	z := &Zone{records: make(map[ipaddr.Addr]string)}
	w := t.World()
	for _, op := range w.Operators {
		for pi, p := range op.Prefixes {
			for i, a := range t.AllInterfaces(p, op) {
				city := cityCodes[(i+pi)%len(cityCodes)]
				z.records[a] = fmt.Sprintf("ae%d.rtr%d.%s.%s.example.net", i%8, i, city, hostSafe(op.Name))
			}
		}
		if dhcp, ok := op.Plan.(*netmodel.DHCPDensePlan); ok {
			for h := 0; h < dhcp.Hosts; h++ {
				z.records[dhcp.HostAddr(h)] = fmt.Sprintf("dhcpv6-%d.dept.%s.example.edu", h, hostSafe(op.Name))
			}
		}
	}
	for i, r := range t.Resolvers() {
		z.records[r] = fmt.Sprintf("resolver%d.example.net", i)
	}
	return z
}

func hostSafe(s string) string {
	return strings.ReplaceAll(strings.ToLower(s), " ", "-")
}

// Len returns the number of PTR records in the zone.
func (z *Zone) Len() int { return len(z.records) }

// PTR resolves the reverse record of a; ok is false for NXDOMAIN.
func (z *Zone) PTR(a ipaddr.Addr) (string, bool) {
	name, ok := z.records[a]
	return name, ok
}

// Add publishes a PTR record (used by tests and custom worlds).
func (z *Zone) Add(a ipaddr.Addr, name string) {
	z.records[a] = name
}

// Probe implements the target package's Prober over the reverse zone: a
// hit is an existing PTR record. Driving the scan scheduler with a Zone
// turns a candidate stream into the Section 6.2.3 name harvest — the
// names themselves come from PTR on the hits afterwards.
func (z *Zone) Probe(_ context.Context, target ipaddr.Addr) (bool, error) {
	_, ok := z.records[target]
	return ok, nil
}

// HarvestAddrs queries every address in the list and returns the distinct
// names found.
func (z *Zone) HarvestAddrs(addrs []ipaddr.Addr) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range addrs {
		if name, ok := z.records[a]; ok && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// HarvestPrefix sweeps PTR queries across every address of a prefix,
// returning the distinct names. It refuses prefixes wider than maxBits
// host bits (a /104 spans 16M queries; the paper swept 2.12M).
func (z *Zone) HarvestPrefix(p ipaddr.Prefix, maxHostBits int) ([]string, error) {
	host := 128 - p.Bits()
	if host > maxHostBits {
		return nil, fmt.Errorf("dnssim: refusing to sweep %v (%d host bits > %d)", p, host, maxHostBits)
	}
	seen := make(map[string]bool)
	var out []string
	a := p.First()
	n := p.NumAddresses()
	for i := uint64(0); i < n; i++ {
		if name, ok := z.records[a]; ok && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
		a = a.Next()
	}
	return out, nil
}

// HarvestPrefixes sweeps a set of prefixes (e.g. the 3@/120-dense class)
// and returns the distinct names across all of them, plus the number of
// queries issued.
func (z *Zone) HarvestPrefixes(prefixes []ipaddr.Prefix, maxHostBits int) (names []string, queries uint64, err error) {
	seen := make(map[string]bool)
	for _, p := range prefixes {
		got, err := z.HarvestPrefix(p, maxHostBits)
		if err != nil {
			return nil, queries, err
		}
		queries += p.NumAddresses()
		for _, name := range got {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	return names, queries, nil
}
