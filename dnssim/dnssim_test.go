package dnssim

import (
	"strings"
	"testing"

	"v6class/internal/ipaddr"
	"v6class/internal/netmodel"
	"v6class/probe"
	"v6class/synth"
)

func zoneAndTopo(t *testing.T) (*Zone, *probe.Topology) {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.02})
	tp := probe.NewTopology(w, synth.EpochMar2015)
	return NewZone(tp), tp
}

func TestZonePopulated(t *testing.T) {
	z, tp := zoneAndTopo(t)
	if z.Len() < 500 {
		t.Fatalf("zone has only %d records", z.Len())
	}
	// Router interfaces resolve with geo-coded names.
	op, _ := tp.World().OperatorByName("us-mobile-1")
	routers := tp.BorderRouters(op.Prefixes[0], op)
	name, ok := z.PTR(routers[0])
	if !ok {
		t.Fatal("border router has no PTR")
	}
	if !strings.Contains(name, "rtr") || !strings.HasSuffix(name, "example.net") {
		t.Errorf("router name = %q", name)
	}
}

func TestDHCPHostNames(t *testing.T) {
	z, tp := zoneAndTopo(t)
	op, _ := tp.World().OperatorByName("eu-univ-dept")
	dhcp := op.Plan.(*netmodel.DHCPDensePlan)
	name, ok := z.PTR(dhcp.HostAddr(0))
	if !ok {
		t.Fatal("DHCP host 0 has no PTR")
	}
	if !strings.HasPrefix(name, "dhcpv6-0.") {
		t.Errorf("host name = %q", name)
	}
	// Every pool address has a name, even if inactive today.
	for h := 0; h < dhcp.Hosts; h++ {
		if _, ok := z.PTR(dhcp.HostAddr(h)); !ok {
			t.Fatalf("host %d missing PTR", h)
		}
	}
}

func TestClientAddressesHaveNoPTR(t *testing.T) {
	z, tp := zoneAndTopo(t)
	day := tp.World().Day(synth.EpochMar2015)
	misses := 0
	checked := 0
	for _, r := range day.Records {
		// Skip the DHCP department, whose clients legitimately resolve.
		if o, ok := tp.World().Table.Lookup(r.Addr); ok && o.Name == "eu-univ-dept" {
			continue
		}
		checked++
		if _, ok := z.PTR(r.Addr); !ok {
			misses++
		}
		if checked >= 2000 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	if float64(misses)/float64(checked) < 0.95 {
		t.Errorf("too many client PTRs: %d/%d resolve", checked-misses, checked)
	}
}

func TestHarvestAddrsDeduplicates(t *testing.T) {
	z, _ := zoneAndTopo(t)
	a := ipaddr.MustParseAddr("2001:db8::1")
	z.Add(a, "dup.example")
	b := ipaddr.MustParseAddr("2001:db8::2")
	z.Add(b, "dup.example")
	names := z.HarvestAddrs([]ipaddr.Addr{a, b, a})
	if len(names) != 1 || names[0] != "dup.example" {
		t.Errorf("names = %v", names)
	}
}

func TestHarvestPrefix(t *testing.T) {
	z, tp := zoneAndTopo(t)
	op, _ := tp.World().OperatorByName("us-mobile-1")
	// Sweep the /120 containing the border ::1..::n run.
	infra := tp.BorderRouters(op.Prefixes[0], op)[0]
	p := ipaddr.PrefixFrom(infra, 120)
	names, err := z.HarvestPrefix(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must find more names than the responding set alone: the
	// silent standby interfaces resolve too.
	responding := z.HarvestAddrs(tp.BorderRouters(op.Prefixes[0], op))
	if len(names) <= len(responding)/2 {
		t.Errorf("sweep found %d names vs %d responding", len(names), len(responding))
	}
	// Refuse oversized sweeps.
	if _, err := z.HarvestPrefix(ipaddr.PrefixFrom(infra, 64), 16); err == nil {
		t.Error("64-bit sweep should be refused")
	}
}

func TestHarvestPrefixes(t *testing.T) {
	z, tp := zoneAndTopo(t)
	op, _ := tp.World().OperatorByName("jp-isp")
	infra := tp.BorderRouters(op.Prefixes[0], op)[0]
	prefixes := []ipaddr.Prefix{
		ipaddr.PrefixFrom(infra, 120),
		ipaddr.PrefixFrom(infra, 120), // duplicate: names dedupe, queries sum
	}
	names, queries, err := z.HarvestPrefixes(prefixes, 16)
	if err != nil {
		t.Fatal(err)
	}
	if queries != 512 {
		t.Errorf("queries = %d, want 512", queries)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}
