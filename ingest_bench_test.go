package v6class

import (
	"runtime"
	"sync"
	"testing"

	"v6class/experiments"
	"v6class/internal/cdnlog"
	"v6class/internal/core"
	"v6class/synth"
)

// Ingestion benchmarks: the sequential Census against the sharded
// concurrent pipeline over a million-address synthetic world, plus
// end-to-end experiment regeneration on one worker versus a bounded pool.
// Shard and worker counts follow GOMAXPROCS, so sweep cores with e.g.
//
//	go test -bench=BenchmarkIngest -cpu=1,2,4,8
//
// On a single core the sharded pipeline pays its routing overhead for
// nothing; from ~2 cores it overtakes AddDay and scales with the machine.

const ingestStudyDays = 40

var (
	ingestOnce    sync.Once
	ingestLogs    []cdnlog.DayLog
	ingestRecords int
)

// ingestWorld generates four consecutive daily logs totalling ~1.05M
// records (about 250-270K distinct addresses per day), once per process.
func ingestWorld() ([]cdnlog.DayLog, int) {
	ingestOnce.Do(func() {
		w := synth.NewWorld(synth.Config{Seed: 99, Scale: 5, StudyDays: ingestStudyDays})
		ingestLogs = w.Days(10, 14)
		for _, l := range ingestLogs {
			ingestRecords += len(l.Records)
		}
	})
	return ingestLogs, ingestRecords
}

func BenchmarkIngest(b *testing.B) {
	logs, records := ingestWorld()
	cfg := core.CensusConfig{StudyDays: ingestStudyDays}
	perIter := func(b *testing.B) {
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := core.NewCensus(cfg)
			for _, l := range logs {
				c.AddDay(l)
			}
			if c.ActiveCount(core.Addresses, 10) == 0 {
				b.Fatal("bad result")
			}
		}
		perIter(b)
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := core.NewShardedCensus(cfg)
			c.AddDays(logs)
			c.Freeze()
			if c.ActiveCount(core.Addresses, 10) == 0 {
				b.Fatal("bad result")
			}
		}
		perIter(b)
	})
}

// BenchmarkIngestStream measures the streaming entry point: a producer
// feeding Ingest day by day, as a daily pipeline tailing logs would.
func BenchmarkIngestStream(b *testing.B) {
	logs, records := ingestWorld()
	cfg := core.CensusConfig{StudyDays: ingestStudyDays}
	for i := 0; i < b.N; i++ {
		c := core.NewShardedCensus(cfg)
		ch := make(chan cdnlog.DayLog)
		go func() {
			for _, l := range logs {
				ch <- l
			}
			close(ch)
		}()
		c.Ingest(ch)
		c.Freeze()
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkExperiments regenerates every registered table/figure driver,
// sequentially and on a GOMAXPROCS-bounded pool; the lab's day cache is
// warmed first so both measure classification, not data synthesis.
func BenchmarkExperiments(b *testing.B) {
	experiments.RunAll(benchLab, runtime.GOMAXPROCS(0)) // warm day cache
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := experiments.RunAll(benchLab, 1); len(got) == 0 {
				b.Fatal("bad result")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := experiments.RunAll(benchLab, 0); len(got) == 0 {
				b.Fatal("bad result")
			}
		}
	})
}
