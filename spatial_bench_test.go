package v6class

import (
	"sync"
	"testing"
)

// Spatial benchmarks: the cost of building an address population and
// classifying it (MRA counts, densify). Together with BenchmarkDensifyTrie
// and BenchmarkServeDenseCold they are the acceptance gauge of the arena
// trie work; the pre-refactor numbers are committed as
// BENCH_spatial_baseline.json.

var (
	spatialBenchOnce sync.Once
	spatialBenchEng  Engine
)

// spatialBenchEngine builds one frozen engine over the million-record
// ingest world, once per process.
func spatialBenchEngine(b *testing.B) Engine {
	spatialBenchOnce.Do(func() {
		logs, _ := ingestWorld()
		eng, err := New(WithStudyDays(ingestStudyDays))
		if err != nil {
			panic(err)
		}
		if err := eng.AddDays(logs); err != nil {
			panic(err)
		}
		if err := eng.Freeze(); err != nil {
			panic(err)
		}
		spatialBenchEng = eng
	})
	return spatialBenchEng
}

// BenchmarkSpatialBuild measures building the spatial population of a
// multi-day window straight off the engine's streaming enumerations — the
// path behind every serve dense/top-k query and the experiments' NativeSet.
// SpatialSet partitions the row sweeps across a bounded worker pool and
// assembles the arena trie in parallel; sweep cores with -cpu to see it
// scale.
func BenchmarkSpatialBuild(b *testing.B) {
	eng := spatialBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := eng.SpatialSet(Addresses, 10, 11, 12, 13)
		if err != nil {
			b.Fatal(err)
		}
		if set.Len() == 0 {
			b.Fatal("bad result")
		}
	}
}
