package v6class

import (
	"fmt"
	"io"
	"iter"
	"sync"
	"sync/atomic"

	"v6class/internal/addrclass"
	"v6class/internal/core"
)

// Engine is the one public census interface: ingest aggregated daily logs,
// Freeze, then query. New picks the implementation — the sequential engine
// or the sharded concurrent pipeline — from the functional options, and
// Open restores either from a snapshot, so callers program against this
// interface only.
//
// Lifecycle: an Engine is created ingesting. Ingestion methods accept logs
// until Freeze; afterwards they return ErrFrozen. Query methods return
// ErrNotFrozen until Freeze; afterwards the engine is immutable and every
// query — scalar or streaming — is safe under unbounded concurrency.
// Freeze is idempotent. Save and WriteTo work in both phases (persisting
// mid-study is the daily-pipeline workflow) but must not run concurrently
// with ingestion.
//
// The iterator-returning methods stream directly over the engine's dense
// row storage: enumeration allocates nothing per element, breaking out of
// the loop stops the underlying sweep at the current row, and no
// goroutines are involved, so an abandoned iterator leaks nothing. Every
// returned Seq is re-iterable from the start. Use slices.Collect (or
// maps.Collect on the Seq2 forms) where a slice is genuinely needed.
type Engine interface {
	// StudyDays returns the configured study period length.
	StudyDays() int
	// Shards returns the temporal shard count: 1 for the sequential
	// engine, the (power-of-two) shard count of the concurrent engine.
	Shards() int
	// Frozen reports whether Freeze has been called.
	Frozen() bool

	// AddDay ingests one aggregated daily log. On the sequential engine it
	// must not be called concurrently; on the sharded engine any number of
	// goroutines may ingest at once.
	AddDay(log DayLog) error
	// AddDays ingests a batch of daily logs (concurrently, on the sharded
	// engine).
	AddDays(logs []DayLog) error
	// Ingest consumes daily logs from a channel until it is closed.
	Ingest(logs <-chan DayLog) error
	// Freeze ends the ingestion phase and makes every query valid. It is
	// idempotent; ingesting goroutines must have returned first.
	Freeze() error

	// WriteTo serializes the census snapshot (engine-agnostic format).
	WriteTo(w io.Writer) (int64, error)
	// Save atomically persists the snapshot to path (temp file + rename;
	// a failed write never destroys an existing snapshot).
	Save(path string) error

	// Summary returns the Table 1 format tally of one ingested day.
	Summary(day int) (DaySummary, error)
	// NumKeys returns the distinct keys of the population ever observed.
	NumKeys(pop Population) (int, error)
	// ActiveCount returns the distinct keys active on a day.
	ActiveCount(pop Population, day int) (int, error)
	// ActiveInRange returns the distinct keys active on at least one day
	// of the inclusive range.
	ActiveInRange(pop Population, from, to int) (int, error)
	// Stability computes the daily nd-stable split under the engine's
	// default options (a Table 2a/2b cell).
	Stability(pop Population, ref, n int) (DailyStability, error)
	// StabilityWith is Stability with explicit classification options.
	StabilityWith(pop Population, ref, n int, opts StabilityOptions) (DailyStability, error)
	// WeeklyStability computes the weekly nd-stable split under the
	// engine's default options (a Table 2c/2d cell).
	WeeklyStability(pop Population, start, n int) (WeeklyStability, error)
	// EpochStable counts keys active in both inclusive day ranges (the
	// 6m-/1y-stable classes).
	EpochStable(pop Population, aFrom, aTo, bFrom, bTo int) (int, error)
	// LookupAddr reports everything known about one address and its /64.
	LookupAddr(a Addr) (AddrLookup, error)
	// LookupPrefix64 reports the activity of one /64 prefix.
	LookupPrefix64(p Prefix) (KeyReport, error)
	// AddrStable reports whether one address is nd-stable w.r.t. ref.
	AddrStable(a Addr, ref, n int, opts StabilityOptions) (bool, error)
	// Prefix64Stable reports whether one /64 is nd-stable w.r.t. ref.
	Prefix64Stable(p Prefix, ref, n int, opts StabilityOptions) (bool, error)
	// LifetimeStats summarizes key lifetimes over an inclusive day range.
	LifetimeStats(pop Population, from, to int) (LifetimeStats, error)
	// ReturnProbability estimates, per gap g in [1, maxGap], the
	// probability that a key active on a day is active again g days later.
	ReturnProbability(pop Population, from, to, maxGap int) ([]float64, error)
	// LongestStablePrefixes discovers the longest prefixes stable across
	// two periods (the Section 7.2 proposal).
	LongestStablePrefixes(aFrom, aTo, bFrom, bTo, minBits int, minSupport uint64) ([]LongestStablePrefix, error)

	// StableAddrs streams the nd-stable addresses for a reference day
	// under the engine's default options (probe-target selection).
	StableAddrs(ref, n int) (iter.Seq[Addr], error)
	// AddrsActiveOn streams every native address active on at least one of
	// the given days, each exactly once.
	AddrsActiveOn(days ...int) (iter.Seq[Addr], error)
	// Prefixes64ActiveOn streams every /64 active on at least one of the
	// given days, each exactly once.
	Prefixes64ActiveOn(days ...int) (iter.Seq[Prefix], error)
	// Keys streams every key of the population ever observed — addresses
	// as /128 prefixes, subnet keys as /64s.
	Keys(pop Population) (iter.Seq[Prefix], error)
	// Lifetimes streams every key of the population with its activity
	// profile.
	Lifetimes(pop Population) (iter.Seq2[Prefix, Activity], error)
	// SpatialSet builds the spatial population (an AddressSet over the
	// arena trie) of the selected days via the partitioned parallel build:
	// dense classes, MRA signatures and aguri profiles all start here.
	SpatialSet(pop Population, days ...int) (*AddressSet, error)
	// TopAggregates streams the k most populated /p aggregates of the
	// selected days' population, largest first (k <= 0 streams all).
	TopAggregates(pop Population, p, k int, days ...int) (iter.Seq[TopAggregate], error)
	// OverlapSeries streams (day, overlap-with-ref) pairs for each day in
	// [ref-before, ref+after] — the Figure 4 curve.
	OverlapSeries(pop Population, ref, before, after int) (iter.Seq2[int, int], error)

	// Ordered, resumable enumerations. The documented total order is the
	// canonical key order: addresses (as /128s) ascend numerically by
	// their 128-bit value; /64 keys ascend by base address, then prefix
	// length — the in-order walk of a binary trie. Every engine
	// implementation — sequential, sharded, remote, coordinator — yields
	// the identical ordered stream for the same census, which is what
	// makes pagination cursors portable and cross-backend gather merges
	// possible. The ...After forms resume strictly after a key previously
	// yielded (after need not itself be a key: the stream continues with
	// the first key greater than it).

	// KeysOrdered streams the keys of the population in ascending key
	// order: every key ever observed when no days are given, otherwise
	// the union of keys active on any listed day, each exactly once.
	KeysOrdered(pop Population, days ...int) (iter.Seq[Prefix], error)
	// KeysOrderedAfter resumes KeysOrdered strictly after a key. The
	// after key's length must match the population (/128 for Addresses,
	// /64 for Prefixes64), else ErrConfig.
	KeysOrderedAfter(pop Population, after Prefix, days ...int) (iter.Seq[Prefix], error)
	// LifetimesOrdered streams every key of the population with its
	// activity profile, in ascending key order.
	LifetimesOrdered(pop Population) (iter.Seq2[Prefix, Activity], error)
	// LifetimesOrderedAfter resumes LifetimesOrdered strictly after a key.
	LifetimesOrderedAfter(pop Population, after Prefix) (iter.Seq2[Prefix, Activity], error)
	// StableAddrsOrdered streams the nd-stable addresses for a reference
	// day under the engine's default options, in ascending address order.
	StableAddrsOrdered(ref, n int) (iter.Seq[Addr], error)
	// StableAddrsOrderedAfter resumes StableAddrsOrdered strictly after
	// an address.
	StableAddrsOrderedAfter(ref, n int, after Addr) (iter.Seq[Addr], error)
	// ReturnCounts returns the per-gap return and opportunity tallies
	// behind ReturnProbability. The counts — unlike the probabilities —
	// are additive across disjoint key partitions, so a cluster
	// coordinator sums them over backends and divides once.
	ReturnCounts(pop Population, from, to, maxGap int) (num, den []int, err error)
}

// engine adapts one of the two internal census implementations to the
// Engine lifecycle. Exactly one of seq/sh is non-nil; a is always the
// active one.
type engine struct {
	a    core.Analyzer
	seq  *core.Census
	sh   *core.ShardedCensus
	opts StabilityOptions // engine-default classification options
	keep func(MAC) bool   // nil: no MAC filter

	// frozen publishes the query phase; it flips only after the sharded
	// store has fully compacted, and freezeMu makes concurrent Freeze
	// calls block until then — an idempotent Freeze must never return
	// while the engine is still mid-compaction.
	freezeMu sync.Mutex
	frozen   atomic.Bool
}

var _ Engine = (*engine)(nil)

// New constructs an empty Engine for a study period. WithStudyDays is
// required; the remaining options select and size the implementation:
//
//	eng, err := v6class.New(
//		v6class.WithStudyDays(365),
//		v6class.WithShards(16),
//	)
//
// Unset, the engine is chosen from GOMAXPROCS: sequential on a single
// core, the sharded concurrent pipeline otherwise.
func New(opts ...Option) (Engine, error) {
	cfg, err := resolve(opts, false)
	if err != nil {
		return nil, err
	}
	return newEngine(cfg), nil
}

// newEngine builds the implementation a resolved config selects.
func newEngine(cfg config) *engine {
	ccfg := core.CensusConfig{
		StudyDays:        cfg.studyDays,
		KeepTransition:   cfg.keepTransition,
		StabilityOptions: cfg.stability,
	}
	e := &engine{opts: cfg.stability, keep: cfg.macFilter}
	if cfg.sequential {
		e.seq = core.NewCensus(ccfg)
		e.a = e.seq
	} else {
		e.sh = core.NewShardedCensusN(ccfg, cfg.shards, cfg.workers)
		e.a = e.sh
	}
	return e
}

// FromAnalyzer adopts an already built census as a frozen, query-ready
// Engine — the bridge for in-process callers (the experiments lab, tests)
// that constructed an internal engine directly. The analyzer must not be
// mutated afterwards.
func FromAnalyzer(a Analyzer) Engine {
	// Adopt the census's configured classification defaults so Stability,
	// WeeklyStability and StableAddrs answer exactly as the analyzer
	// itself would.
	e := &engine{a: a, opts: a.StabilityDefaults()}
	switch c := a.(type) {
	case *core.Census:
		e.seq = c
	case *core.ShardedCensus:
		e.sh = c
		if !c.Frozen() {
			c.Freeze()
		}
	}
	e.frozen.Store(true)
	return e
}

func (e *engine) StudyDays() int { return e.a.StudyDays() }

func (e *engine) Shards() int {
	if e.sh != nil {
		return e.sh.NumShards()
	}
	return 1
}

func (e *engine) Frozen() bool { return e.frozen.Load() }

// ingestable gates the mutation phase.
func (e *engine) ingestable() error {
	if e.frozen.Load() {
		return ErrFrozen
	}
	return nil
}

// queryable gates the analysis phase.
func (e *engine) queryable() error {
	if !e.frozen.Load() {
		return ErrNotFrozen
	}
	return nil
}

// checkPop rejects populations outside the two defined ones before they
// reach internal layers that panic on them.
func checkPop(pop Population) error {
	if pop != Addresses && pop != Prefixes64 {
		return fmt.Errorf("%w: unknown population %d", ErrConfig, pop)
	}
	return nil
}

// checkDay refuses logs whose day the study period cannot hold; the
// temporal stores would otherwise silently ignore every observation.
func (e *engine) checkDay(day int) error {
	if day < 0 || day >= e.a.StudyDays() {
		return fmt.Errorf("%w: day %d of a %d-day study", ErrDayRange, day, e.a.StudyDays())
	}
	return nil
}

// filterLog applies the configured MAC filter to one day's records,
// returning the log unchanged when no filter is set.
func (e *engine) filterLog(l DayLog) DayLog {
	if e.keep == nil {
		return l
	}
	recs := make([]Record, 0, len(l.Records))
	for _, r := range l.Records {
		if mac, ok := addrclass.EUI64MAC(r.Addr); ok && !e.keep(mac) {
			continue
		}
		recs = append(recs, r)
	}
	l.Records = recs
	return l
}

func (e *engine) AddDay(log DayLog) error {
	if err := e.ingestable(); err != nil {
		return err
	}
	if err := e.checkDay(log.Day); err != nil {
		return err
	}
	log = e.filterLog(log)
	if e.sh != nil {
		e.sh.AddDay(log)
	} else {
		e.seq.AddDay(log)
	}
	return nil
}

func (e *engine) AddDays(logs []DayLog) error {
	if err := e.ingestable(); err != nil {
		return err
	}
	// Validate every day before ingesting any: the batch either lands
	// whole or is refused whole.
	for _, l := range logs {
		if err := e.checkDay(l.Day); err != nil {
			return err
		}
	}
	if e.sh == nil {
		for _, l := range logs {
			e.seq.AddDay(e.filterLog(l))
		}
		return nil
	}
	if e.keep != nil {
		filtered := make([]DayLog, len(logs))
		for i, l := range logs {
			filtered[i] = e.filterLog(l)
		}
		logs = filtered
	}
	e.sh.AddDays(logs)
	return nil
}

func (e *engine) Ingest(logs <-chan DayLog) error {
	if err := e.ingestable(); err != nil {
		return err
	}
	if e.sh == nil {
		var bad error
		for l := range logs {
			if err := e.checkDay(l.Day); err != nil {
				// Keep draining so producers never block on a channel
				// nobody reads; report the first refusal at the end.
				if bad == nil {
					bad = err
				}
				continue
			}
			e.seq.AddDay(e.filterLog(l))
		}
		return bad
	}
	// Day validation (and the MAC filter, when set) runs on a pipeline
	// stage so the sharded ingest still overlaps classification with
	// routing; the goroutine exits when logs closes. Out-of-period logs
	// are dropped from the stream and reported after the drain.
	var bad error
	checked := make(chan DayLog, 1)
	go func() {
		defer close(checked)
		for l := range logs {
			if err := e.checkDay(l.Day); err != nil {
				if bad == nil {
					bad = err
				}
				continue
			}
			checked <- e.filterLog(l)
		}
	}()
	e.sh.Ingest(checked)
	return bad
}

func (e *engine) Freeze() error {
	e.freezeMu.Lock()
	defer e.freezeMu.Unlock()
	if e.frozen.Load() {
		return nil
	}
	if e.sh != nil {
		e.sh.Freeze()
	} else if e.seq != nil {
		// Compact the sequential stores into their read-optimized slabs;
		// on a successor generation this also merges the overlay into the
		// parent's row space and arms the generational delta queries.
		e.seq.Freeze()
	}
	e.frozen.Store(true)
	return nil
}

func (e *engine) Summary(day int) (DaySummary, error) {
	if err := e.queryable(); err != nil {
		return DaySummary{}, err
	}
	return e.a.Summary(day), nil
}

func (e *engine) NumKeys(pop Population) (int, error) {
	if err := e.popQuery(pop); err != nil {
		return 0, err
	}
	return e.a.Keys(pop), nil
}

// popQuery combines the freeze and population checks of the pop-keyed
// scalar queries.
func (e *engine) popQuery(pop Population) error {
	if err := e.queryable(); err != nil {
		return err
	}
	return checkPop(pop)
}

func (e *engine) ActiveCount(pop Population, day int) (int, error) {
	if err := e.popQuery(pop); err != nil {
		return 0, err
	}
	return e.a.ActiveCount(pop, day), nil
}

func (e *engine) ActiveInRange(pop Population, from, to int) (int, error) {
	if err := e.popQuery(pop); err != nil {
		return 0, err
	}
	return e.a.ActiveInRange(pop, from, to), nil
}

func (e *engine) Stability(pop Population, ref, n int) (DailyStability, error) {
	return e.StabilityWith(pop, ref, n, e.opts)
}

func (e *engine) StabilityWith(pop Population, ref, n int, opts StabilityOptions) (DailyStability, error) {
	if err := e.popQuery(pop); err != nil {
		return DailyStability{}, err
	}
	return e.a.StabilityWith(pop, ref, n, opts), nil
}

func (e *engine) WeeklyStability(pop Population, start, n int) (WeeklyStability, error) {
	if err := e.popQuery(pop); err != nil {
		return WeeklyStability{}, err
	}
	return e.a.WeeklyStabilityWith(pop, start, n, e.opts), nil
}

func (e *engine) EpochStable(pop Population, aFrom, aTo, bFrom, bTo int) (int, error) {
	if err := e.popQuery(pop); err != nil {
		return 0, err
	}
	return e.a.EpochStable(pop, aFrom, aTo, bFrom, bTo), nil
}

func (e *engine) LookupAddr(a Addr) (AddrLookup, error) {
	if err := e.queryable(); err != nil {
		return AddrLookup{}, err
	}
	return e.a.LookupAddr(a), nil
}

func (e *engine) LookupPrefix64(p Prefix) (KeyReport, error) {
	if err := e.queryable(); err != nil {
		return KeyReport{}, err
	}
	return e.a.LookupPrefix64(p), nil
}

func (e *engine) AddrStable(a Addr, ref, n int, opts StabilityOptions) (bool, error) {
	if err := e.queryable(); err != nil {
		return false, err
	}
	return e.a.AddrStable(a, ref, n, opts), nil
}

func (e *engine) Prefix64Stable(p Prefix, ref, n int, opts StabilityOptions) (bool, error) {
	if err := e.queryable(); err != nil {
		return false, err
	}
	return e.a.Prefix64Stable(p, ref, n, opts), nil
}

func (e *engine) LifetimeStats(pop Population, from, to int) (LifetimeStats, error) {
	if err := e.popQuery(pop); err != nil {
		return LifetimeStats{}, err
	}
	return e.a.LifetimeStats(pop, from, to), nil
}

func (e *engine) ReturnProbability(pop Population, from, to, maxGap int) ([]float64, error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if maxGap < 0 {
		return nil, fmt.Errorf("%w: negative maxGap %d", ErrConfig, maxGap)
	}
	return e.a.ReturnProbability(pop, from, to, maxGap), nil
}

func (e *engine) LongestStablePrefixes(aFrom, aTo, bFrom, bTo, minBits int, minSupport uint64) ([]LongestStablePrefix, error) {
	if err := e.queryable(); err != nil {
		return nil, err
	}
	return e.a.LongestStablePrefixes(aFrom, aTo, bFrom, bTo, minBits, minSupport), nil
}
