package serve

import (
	"sync"
	"testing"
)

func TestMemoSingleflightAndBound(t *testing.T) {
	var m memo[int]
	builds := 0
	for i := 0; i < 3; i++ {
		if got := m.do(2, "a", func() int { builds++; return 7 }); got != 7 {
			t.Fatalf("do = %d, want 7", got)
		}
	}
	if builds != 1 {
		t.Fatalf("built %d times, want 1", builds)
	}
	m.do(2, "b", func() int { return 8 })
	m.do(2, "c", func() int { return 9 }) // evicts an arbitrary entry
	if got := len(m.entries); got != 2 {
		t.Fatalf("bound not enforced: %d entries", got)
	}
}

// TestMemoPanickingBuildNotLatched holds the review finding: a build that
// panics must not consume the entry — later callers retry and succeed
// instead of reading a zero value forever.
func TestMemoPanickingBuildNotLatched(t *testing.T) {
	var m memo[int]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first build should have panicked through do")
			}
		}()
		m.do(4, "k", func() int { panic("transient") })
	}()
	if got := m.do(4, "k", func() int { return 42 }); got != 42 {
		t.Fatalf("retry after panic = %d, want 42", got)
	}
	if got := m.do(4, "k", func() int { t.Fatal("rebuilt a good entry"); return 0 }); got != 42 {
		t.Fatalf("memoized value = %d, want 42", got)
	}
}

// TestMemoConcurrent exercises the singleflight under the race detector.
func TestMemoConcurrent(t *testing.T) {
	var m memo[int]
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := string(rune('a' + (g+i)%5))
				want := int('a' + (g+i)%5)
				if got := m.do(3, key, func() int { return want }); got != want {
					t.Errorf("do(%q) = %d, want %d", key, got, want)
				}
			}
		}(g)
	}
	wg.Wait()
}
