package serve

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"v6class/internal/core"
)

func date(s string) time.Time {
	d, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		panic(err)
	}
	return d
}

// TestCatalogTimeTravel drives the /v1/at surface over a two-entry catalog:
// metadata resolution, day-index translation, endpoint re-dispatch against
// the pinned snapshot, explicit-parameter precedence, and the error paths.
func TestCatalogTimeTravel(t *testing.T) {
	january := buildCensus(t, 5, 19)
	march := buildCensus(t, 0, 10)
	janPath := writeSnapshot(t, january, "jan.state")
	marPath := writeSnapshot(t, march, "mar.state")

	s := New(Options{Catalog: []CatalogEntry{
		{Name: "2015-03", Path: marPath, Start: date("2015-03-01"), End: date("2015-03-30")},
		{Name: "2015-01", Path: janPath, Start: date("2015-01-01"), End: date("2015-01-30")},
	}})
	// The catalog serves even with no default snapshot installed.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("metadata", func(t *testing.T) {
		var at atResponse
		resp := get(t, ts, "/v1/at?date=2015-01-13", &at)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		fi, err := os.Stat(janPath)
		if err != nil {
			t.Fatal(err)
		}
		if at.Snapshot != "2015-01" || at.DayIndex != 12 || at.Start != "2015-01-01" || at.End != "2015-01-30" {
			t.Errorf("resolution %+v", at)
		}
		if at.Format != 2 || at.SizeBytes != fi.Size() || at.StudyDays != 30 || at.Epoch == 0 {
			t.Errorf("provenance %+v (want format 2, size %d)", at, fi.Size())
		}
		if resp.Header.Get("X-V6-Snapshot") != "2015-01" {
			t.Errorf("snapshot header %q", resp.Header.Get("X-V6-Snapshot"))
		}
	})

	t.Run("redispatch", func(t *testing.T) {
		var got summaryResponse
		resp := get(t, ts, "/v1/at/summary?date=2015-01-13", &got)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		want := january.Summary(12)
		if got.Total != want.Total || got.Native != want.Native || got.Day != 12 {
			t.Errorf("summary %+v vs direct day-12 %+v", got, want)
		}
		if resp.Header.Get("X-V6-Snapshot") != "2015-01" {
			t.Errorf("snapshot header %q", resp.Header.Get("X-V6-Snapshot"))
		}

		// A different date in the other entry reaches the other census.
		var other summaryResponse
		get(t, ts, "/v1/at/summary?date=2015-03-06", &other)
		if want := march.Summary(5); other.Total != want.Total || other.Day != 5 {
			t.Errorf("march summary %+v vs direct day-5 %+v", other, want)
		}
	})

	t.Run("explicit day wins", func(t *testing.T) {
		var got summaryResponse
		get(t, ts, "/v1/at/summary?date=2015-01-13&day=7", &got)
		if want := january.Summary(7); got.Total != want.Total || got.Day != 7 {
			t.Errorf("summary %+v vs direct day-7 %+v", got, want)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for path, status := range map[string]int{
			"/v1/at":                        400, // missing date
			"/v1/at?date=2015-99-01":        400, // unparsable
			"/v1/at?date=2015-07-04":        404, // uncovered
			"/v1/at/at?date=2015-01-13":     400, // recursion
			"/v1/at/nosuch?date=2015-01-13": 404, // unknown endpoint downstream
		} {
			if resp := get(t, ts, path, nil); resp.StatusCode != status {
				t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, status)
			}
		}
	})
}

// TestCatalogResidency exercises the LRU budget: with room for one resident
// snapshot, alternating dates evict and reload, and a reload is a new
// generation (fresh epoch), so stale cache entries cannot be served for it.
func TestCatalogResidency(t *testing.T) {
	janPath := writeSnapshot(t, buildCensus(t, 5, 19), "jan.state")
	marPath := writeSnapshot(t, buildCensus(t, 0, 10), "mar.state")
	s := New(Options{
		Catalog: []CatalogEntry{
			{Name: "jan", Path: janPath, Start: date("2015-01-01"), End: date("2015-01-30")},
			{Name: "mar", Path: marPath, Start: date("2015-03-01"), End: date("2015-03-30")},
		},
		CatalogResident: 1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var first atResponse
	get(t, ts, "/v1/at?date=2015-01-02", &first)
	if got := s.catalog.Resident(); !reflect.DeepEqual(got, []string{"jan"}) {
		t.Fatalf("resident %v after jan query", got)
	}
	var again atResponse
	get(t, ts, "/v1/at?date=2015-01-03", &again)
	if again.Epoch != first.Epoch {
		t.Errorf("resident snapshot changed epoch across queries: %d then %d", first.Epoch, again.Epoch)
	}

	get(t, ts, "/v1/at?date=2015-03-02", nil)
	if got := s.catalog.Resident(); !reflect.DeepEqual(got, []string{"mar"}) {
		t.Fatalf("resident %v after mar query (budget 1)", got)
	}

	var reloaded atResponse
	get(t, ts, "/v1/at?date=2015-01-02", &reloaded)
	if reloaded.Epoch <= again.Epoch {
		t.Errorf("reload after eviction kept epoch %d (was %d); caches would alias generations",
			reloaded.Epoch, again.Epoch)
	}
}

// TestSnapshotInfo checks the ?info=1 provenance report of /v1/snapshot for
// both on-disk formats and for an in-memory install.
func TestSnapshotInfo(t *testing.T) {
	c := buildCensus(t, 5, 19)
	v2Path := writeSnapshot(t, c, "a.state")
	v1Path := writeSnapshotV1(t, buildCensus(t, 5, 19))

	s := New(Options{})
	if _, err := s.LoadFile("v2", v2Path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFile("v1", v1Path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, path := range map[string]string{"v2": v2Path, "v1": v1Path} {
		var info snapshotInfoResponse
		resp := get(t, ts, "/v1/snapshot?info=1&snap="+name, &info)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		wantFormat := 2
		if name == "v1" {
			wantFormat = 1
		}
		if info.Format != wantFormat || info.SizeBytes != fi.Size() || info.Source != path || info.StudyDays != 30 {
			t.Errorf("%s info %+v (want format %d, size %d, source %s)", name, info, wantFormat, fi.Size(), path)
		}
	}
}

// writeSnapshotV1 persists a census in the legacy stream format.
func writeSnapshotV1(t testing.TB, c *core.Census) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "legacy.state")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteToV1(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}
