package serve

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"v6class"
	"v6class/experiments"
)

// maxDayRange bounds from/to day selections so a single request cannot ask
// for an unbounded population build.
const maxDayRange = 1024

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, status, body)
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// snapshotHandler resolves the request's snapshot once, at dispatch; the
// handler then works against that immutable generation for its whole
// lifetime, however many reloads land meanwhile. A snapshot pinned to the
// request context (the /v1/at time-travel re-dispatch) wins; otherwise
// ?snap=NAME selects from the registry, defaulting to the most recently
// installed. The resolved name and epoch are echoed as headers so clients
// (and the reload tests) can tell generations apart.
func (s *Server) snapshotHandler(fn func(http.ResponseWriter, *http.Request, *Snapshot)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap, pinned := r.Context().Value(pinnedSnapshotKey{}).(*Snapshot)
		if !pinned {
			name := r.URL.Query().Get("snap")
			snap = s.Snapshot(name)
			if snap == nil {
				writeErr(w, http.StatusNotFound, CodeUnknownSnapshot, nil, "no snapshot %q installed", name)
				return
			}
		}
		w.Header().Set("X-V6-Snapshot", snap.Name)
		w.Header().Set("X-V6-Epoch", strconv.FormatUint(snap.Epoch, 10))
		// A cluster coordinator snapshot surfaces dead backends as
		// availability errors out of strict(); answer those with a 503
		// envelope and a retry hint instead of killing the connection.
		// Anything else re-panics into the http.Server failure path.
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, v6class.ErrUnavailable) {
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusServiceUnavailable, CodeUnavailable, snap, "backend unavailable: %v", err)
				return
			}
			panic(rec)
		}()
		fn(w, r, snap)
	}
}

// limited wraps an expensive sweep handler with the admission semaphore:
// when every slot is busy the request is shed immediately — HTTP 429, code
// "overloaded", Retry-After hint — rather than queued, so overload turns
// into client backoff instead of a goroutine pile-up. The remote client
// honors the hint and retries on its own.
func (s *Server) limited(fn func(http.ResponseWriter, *http.Request, *Snapshot)) func(http.ResponseWriter, *http.Request, *Snapshot) {
	return func(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
		if s.sweepSem == nil {
			fn(w, r, snap)
			return
		}
		select {
		case s.sweepSem <- struct{}{}:
			defer func() { <-s.sweepSem }()
			fn(w, r, snap)
		default:
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, CodeOverloaded, snap,
				"sweep concurrency limit (%d) saturated; retry shortly", cap(s.sweepSem))
		}
	}
}

// snapKey prefixes a canonical query key with the snapshot's name and
// epoch, so a cache entry can never be read through a different engine
// generation. A nil snapshot (lab-backed results) keys as-is.
func snapKey(snap *Snapshot, key string) string {
	if snap == nil {
		return key
	}
	return fmt.Sprintf("%s|%d|%s", snap.Name, snap.Epoch, key)
}

// cachedBody resolves the canonical key through the result cache,
// computing, marshaling and storing on a miss. Keys embed the snapshot
// epoch, so a reload naturally invalidates: fresh requests compute against
// the fresh engine under a fresh key while stale entries age out by
// eviction.
func (s *Server) cachedBody(snap *Snapshot, key string, compute func() any) ([]byte, error) {
	key = snapKey(snap, key)
	if body, ok := s.cache.Get(key); ok {
		return body, nil
	}
	body, err := json.Marshal(compute())
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, body)
	return body, nil
}

// cached serves cachedBody's result directly as the response.
func (s *Server) cached(w http.ResponseWriter, snap *Snapshot, key string, compute func() any) {
	body, err := s.cachedBody(snap, key, compute)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, snap, "encoding response")
		return
	}
	writeBody(w, http.StatusOK, body)
}

// strict unwraps an Engine query that cannot fail on an installed
// snapshot: Install freezes every engine and the population/parameter
// validation runs before dispatch, so a residual error is a programming
// bug, surfaced by panicking into the server's failure path rather than
// being cached as a response body. Two cluster-backed exceptions: a
// degraded-mode coordinator's ErrDegraded annotation accompanies a usable
// partial result and passes through (the census keeps answering with the
// partitions it has), and an ErrUnavailable panic is caught by
// snapshotHandler and answered as a 503 envelope.
func strict[T any](v T, err error) T {
	if err != nil && !errors.Is(err, v6class.ErrDegraded) {
		panic(err)
	}
	return v
}

// The handler-side param helpers are one-line adapters over the exported
// wire vocabulary in params.go, which the remote client shares; the wire
// format is defined exactly once.

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	return DecodeInt(r.URL.Query(), name, def)
}

// requireInt parses a mandatory integer query parameter.
func requireInt(r *http.Request, name string) (int, error) {
	return RequireInt(r.URL.Query(), name)
}

// popParam parses the population selector: addresses by default, /64
// prefixes for pop=64s.
func popParam(r *http.Request) (v6class.Population, string, error) {
	return DecodePop(r.URL.Query())
}

// daysParam parses the day selection of population-building endpoints:
// day=N, an explicit comma list days=N,M,..., or an inclusive from=/to=
// range. The selection is returned normalized (sorted, deduplicated) — the
// canonical form is used both for the memo/cache keys and for the response
// echo, so days=2,1 and days=1,2 are the same query and share one
// population build.
func daysParam(r *http.Request) ([]int, error) {
	return DecodeDays(r.URL.Query())
}

// optsParam parses the stability options (window=N means the paper-style
// (-Nd,+Nd) window, default 7; wbefore=/wafter= an asymmetric one; plus
// slew= and anypair=).
func optsParam(r *http.Request) (v6class.StabilityOptions, int, error) {
	return DecodeWindow(r.URL.Query())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"uptimeSec": int(time.Since(s.started).Seconds()),
		"snapshots": s.Names(),
		"cache": map[string]uint64{
			"entries": uint64(s.cache.Len()),
			"hits":    hits,
			"misses":  misses,
		},
	})
}

type metaResponse struct {
	Snapshot   string `json:"snapshot"`
	Source     string `json:"source"`
	Epoch      uint64 `json:"epoch"`
	LoadedAt   string `json:"loadedAt"`
	StudyDays  int    `json:"studyDays"`
	Addresses  int    `json:"addresses"`
	Prefixes64 int    `json:"prefixes64"`
	// Shards is the cluster fan-out behind this snapshot: the number of
	// backends a coordinator engine scatters to, 0 for a single-box
	// engine.
	Shards int `json:"shards,omitempty"`
}

// shardCounted is implemented by cluster-tier engines (the coordinator)
// that fan queries out to several backends.
type shardCounted interface{ NumBackends() int }

func metaOf(snap *Snapshot) metaResponse {
	m := metaResponse{
		Snapshot:   snap.Name,
		Source:     snap.Source,
		Epoch:      snap.Epoch,
		LoadedAt:   snap.LoadedAt.UTC().Format(time.RFC3339),
		StudyDays:  snap.Engine.StudyDays(),
		Addresses:  strict(snap.Engine.NumKeys(v6class.Addresses)),
		Prefixes64: strict(snap.Engine.NumKeys(v6class.Prefixes64)),
	}
	if sc, ok := snap.Engine.(shardCounted); ok {
		m.Shards = sc.NumBackends()
	}
	return m
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	writeJSON(w, http.StatusOK, metaOf(snap))
}

type summaryResponse struct {
	Day     int            `json:"day"`
	Total   int            `json:"total"`
	Native  int            `json:"native"`
	Addrs64 int            `json:"addrs64"`
	MACs    int            `json:"macs"`
	ByKind  map[string]int `json:"byKind"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	day, err := requireInt(r, "day")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	sum := strict(snap.Engine.Summary(day))
	resp := summaryResponse{
		Day:     sum.Day,
		Total:   sum.Total,
		Native:  sum.Native,
		Addrs64: sum.Addrs64,
		MACs:    sum.MACs,
		ByKind:  make(map[string]int, len(sum.ByKind)),
	}
	for k, n := range sum.ByKind {
		resp.ByKind[k.String()] = n
	}
	writeJSON(w, http.StatusOK, resp)
}

type stabilityResponse struct {
	Pop       string `json:"pop"`
	Ref       int    `json:"ref"`
	N         int    `json:"n"`
	Window    int    `json:"window"`
	WBefore   int    `json:"wbefore,omitempty"`
	WAfter    int    `json:"wafter,omitempty"`
	Slew      int    `json:"slew,omitempty"`
	AnyPair   bool   `json:"anypair,omitempty"`
	Weekly    bool   `json:"weekly"`
	Active    int    `json:"active"`
	Stable    int    `json:"stable"`
	NotStable int    `json:"notStable"`
}

func (s *Server) handleStability(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	pop, popName, err := popParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	ref, err := requireInt(r, "ref")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	n, err := intParam(r, "n", 3)
	if err != nil || n <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter n: want a positive day count")
		return
	}
	opts, window, err := optsParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	weekly := r.URL.Query().Get("weekly") == "true"
	var optsKey string
	if weekly {
		// Weekly classification follows the snapshot's configured window
		// (the paper's ±7d); the window/slew/anypair parameters apply to
		// daily classification only, so zero them rather than echo (and
		// cache under) values that did not shape the result.
		window = 0
		opts = v6class.StabilityOptions{}
	} else {
		optsKey = windowKey(opts)
	}
	key := fmt.Sprintf("stability?pop=%s&ref=%d&n=%d&%s&weekly=%v", popName, ref, n, optsKey, weekly)
	s.cached(w, snap, key, func() any {
		resp := stabilityResponse{Pop: popName, Ref: ref, N: n, Window: window, Weekly: weekly}
		if !weekly {
			resp.Slew, resp.AnyPair = opts.SlewDays, opts.AnyPair
			if window == 0 {
				resp.WBefore, resp.WAfter = opts.Window.Before, opts.Window.After
			}
		}
		if weekly {
			st := strict(snap.Engine.WeeklyStability(pop, ref, n))
			resp.Active, resp.Stable, resp.NotStable = st.Active, st.Stable, st.NotStable
		} else {
			st := strict(snap.Engine.StabilityWith(pop, ref, n, opts))
			resp.Active, resp.Stable, resp.NotStable = st.Active, st.Stable, st.NotStable
		}
		return resp
	})
}

type lookupResponse struct {
	Addr           string             `json:"addr,omitempty"`
	Kind           string             `json:"kind,omitempty"`
	Prefix         string             `json:"prefix,omitempty"`
	Address        *v6class.KeyReport `json:"address,omitempty"`
	Prefix64       v6class.KeyReport  `json:"prefix64"`
	Stable         *bool              `json:"stable,omitempty"`
	Prefix64Stable *bool              `json:"prefix64Stable,omitempty"`
}

// handleLookup is the per-prefix point lookup: format classification,
// temporal availability/volatility, and (when ref is given) nd-stability,
// for an address and its /64, or for a bare /64.
func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	n, err := intParam(r, "n", 3)
	if err != nil || n <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter n: want a positive day count")
		return
	}
	opts, _, err := optsParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	hasRef := q.Get("ref") != ""
	ref, err := intParam(r, "ref", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}

	switch {
	case q.Get("addr") != "":
		a, err := v6class.ParseAddr(q.Get("addr"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter addr: %v", err)
			return
		}
		lk := strict(snap.Engine.LookupAddr(a))
		resp := lookupResponse{
			Addr:     lk.Addr.String(),
			Kind:     lk.Kind.String(),
			Prefix:   v6class.PrefixFrom(a, 64).String(),
			Address:  &lk.Report,
			Prefix64: lk.Prefix64,
		}
		if hasRef {
			st := strict(snap.Engine.AddrStable(a, ref, n, opts))
			p64st := strict(snap.Engine.Prefix64Stable(v6class.PrefixFrom(a, 64), ref, n, opts))
			resp.Stable, resp.Prefix64Stable = &st, &p64st
		}
		writeJSON(w, http.StatusOK, resp)
	case q.Get("p64") != "":
		p, err := v6class.ParsePrefix(q.Get("p64"))
		switch {
		case err == nil && p.Bits() != 64:
			// The census keys /64s only; answering a /48 or /56 question
			// with the /64 of its base address would be a different key.
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter p64: want a /64 prefix, got /%d", p.Bits())
			return
		case err != nil:
			a, aerr := v6class.ParseAddr(q.Get("p64"))
			if aerr != nil {
				writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter p64: %v", err)
				return
			}
			p = v6class.PrefixFrom(a, 64)
		}
		p = v6class.PrefixFrom(p.Addr(), 64)
		resp := lookupResponse{
			Prefix:   p.String(),
			Prefix64: strict(snap.Engine.LookupPrefix64(p)),
		}
		if hasRef {
			p64st := strict(snap.Engine.Prefix64Stable(p, ref, n, opts))
			resp.Prefix64Stable = &p64st
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "missing lookup key: give addr= or p64=")
	}
}

type denseResponse struct {
	N        uint64   `json:"n"`
	P        int      `json:"p"`
	Least    bool     `json:"leastSpecific"`
	Days     []int    `json:"days"`
	Prefixes int      `json:"prefixes"`
	Covered  uint64   `json:"coveredAddresses"`
	Possible float64  `json:"possibleAddresses"`
	Density  float64  `json:"density"`
	Examples []string `json:"examples,omitempty"`
}

// maxExamples caps the example prefixes (dense) and rows (topk) a cached
// sweep retains; requested limits beyond it are clamped. Keeping limit/k
// out of the cache key means a client iterating them cannot force the
// expensive sweep to recompute.
const maxExamples = 100

// handleDense runs the n@/p-dense classification (optionally the densify
// least-specific sweep) over the population of the selected days. This is
// the service's most expensive query, so the sweep is cached under a
// limit-free key (with maxExamples examples) and the requested limit is
// applied at render time.
func (s *Server) handleDense(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	if isPaged(r.URL.Query()) {
		s.handleDensePage(w, r, snap)
		return
	}
	days, err := daysParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	n, err := intParam(r, "n", 2)
	if err != nil || n <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter n: want a positive count")
		return
	}
	p, err := intParam(r, "p", 112)
	if err != nil || p < 0 || p > 128 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter p: want a prefix length in [0,128]")
		return
	}
	limit, err := intParam(r, "limit", 20)
	if err != nil || limit < 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter limit: want a non-negative count")
		return
	}
	if limit > maxExamples {
		limit = maxExamples
	}
	least := r.URL.Query().Get("least") == "true"
	key := fmt.Sprintf("dense?n=%d&p=%d&least=%v&days=%s", n, p, least, daysKey(days))
	renderKey := snapKey(snap, fmt.Sprintf("%s&limit=%d", key, limit))
	// The hot path serves the per-limit rendered body directly. A miss
	// reads two per-snapshot memos — the spatial population (one parallel
	// trie build shared with top-k and every other dense parameterization
	// of the same days) and the limit-free sweep struct — then truncates a
	// copy of the struct to the requested limit and marshals once: no
	// recompute, and no decode of a cached JSON body.
	if body, ok := s.cache.Get(renderKey); ok {
		writeBody(w, http.StatusOK, body)
		return
	}
	resp := snap.results.do(maxResultEntries, key, func() any {
		set := snap.addressSet(v6class.Addresses, "addrs", days)
		cls := v6class.DensityClass{N: uint64(n), P: p}
		var res v6class.DensityResult
		if least {
			res = set.DenseLeastSpecific(cls)
		} else {
			res = set.DenseFixed(cls)
		}
		out := denseResponse{
			N: uint64(n), P: p, Least: least, Days: days,
			Prefixes: len(res.Prefixes),
			Covered:  res.CoveredAddresses,
			Possible: res.PossibleAddresses,
			Density:  res.Density(),
		}
		_, examples := v6class.ScanTargets(res, maxExamples)
		for _, ex := range examples {
			out.Examples = append(out.Examples, ex.String())
		}
		return out
	}).(denseResponse)
	if len(resp.Examples) > limit {
		// resp is a copy of the memoized struct; shortening the slice
		// header is render-local.
		resp.Examples = resp.Examples[:limit]
	}
	rendered, err := json.Marshal(resp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, snap, "encoding response")
		return
	}
	s.cache.Put(renderKey, rendered)
	writeBody(w, http.StatusOK, rendered)
}

type topkRow struct {
	Prefix string `json:"prefix"`
	Count  uint64 `json:"count"`
}

type topkResponse struct {
	Pop      string    `json:"pop"`
	P        int       `json:"p"`
	K        int       `json:"k"`
	Days     []int     `json:"days"`
	Occupied int       `json:"occupied"`
	Rows     []topkRow `json:"rows"`
}

// handleTopK returns the k most populated /p aggregates of the selected
// days' population. Like dense, the aggregate sweep is cached under a
// k-free key (with maxExamples rows) and k is applied at render time; the
// ranking streams off the engine iterator, so only the retained rows are
// ever rendered.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	if isPaged(r.URL.Query()) {
		s.handleTopKPage(w, r, snap)
		return
	}
	pop, popName, err := popParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	days, err := daysParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	p, err := intParam(r, "p", 48)
	if err != nil || p < 0 || p > 128 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter p: want a prefix length in [0,128]")
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil || k <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter k: want a positive count")
		return
	}
	if k > maxExamples {
		k = maxExamples
	}
	key := fmt.Sprintf("topk?pop=%s&p=%d&days=%s", popName, p, daysKey(days))
	renderKey := snapKey(snap, fmt.Sprintf("%s&k=%d", key, k))
	if body, ok := s.cache.Get(renderKey); ok {
		writeBody(w, http.StatusOK, body)
		return
	}
	// Like dense: the ranking derives from the per-snapshot shared
	// population (one build covers every aggregate length and k), and the
	// k-free struct is memoized so a render-key miss truncates and
	// marshals without recomputing or decoding.
	resp := snap.results.do(maxResultEntries, key, func() any {
		set := snap.addressSet(pop, popName, days)
		out := topkResponse{Pop: popName, P: p, Days: days, Rows: []topkRow{}}
		for _, agg := range set.TopAggregates(p, 0) {
			if out.Occupied < maxExamples {
				out.Rows = append(out.Rows, topkRow{Prefix: agg.Prefix.String(), Count: agg.Count})
			}
			out.Occupied++
		}
		return out
	}).(topkResponse)
	resp.K = k
	if len(resp.Rows) > k {
		resp.Rows = resp.Rows[:k]
	}
	rendered, err := json.Marshal(resp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, snap, "encoding response")
		return
	}
	s.cache.Put(renderKey, rendered)
	writeBody(w, http.StatusOK, rendered)
}

type overlapResponse struct {
	Pop    string `json:"pop"`
	Ref    int    `json:"ref"`
	Before int    `json:"before"`
	After  int    `json:"after"`
	Series []int  `json:"series"`
}

func (s *Server) handleOverlap(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	pop, popName, err := popParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	ref, err := requireInt(r, "ref")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	before, err := intParam(r, "before", 7)
	if err != nil || before < 0 || before > maxDayRange {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter before: want a day count in [0,%d]", maxDayRange)
		return
	}
	after, err := intParam(r, "after", 7)
	if err != nil || after < 0 || after > maxDayRange {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter after: want a day count in [0,%d]", maxDayRange)
		return
	}
	key := fmt.Sprintf("overlap?pop=%s&ref=%d&before=%d&after=%d", popName, ref, before, after)
	s.cached(w, snap, key, func() any {
		series := make([]int, 0, before+after+1)
		for _, n := range strict(snap.Engine.OverlapSeries(pop, ref, before, after)) {
			series = append(series, n)
		}
		return overlapResponse{
			Pop: popName, Ref: ref, Before: before, After: after,
			Series: series,
		}
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	if s.lab == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, nil, "experiments disabled: server started without a lab")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.DriverNames()})
}

type experimentResponse struct {
	Name      string `json:"name"`
	ElapsedMS int64  `json:"elapsedMs"`
	Output    string `json:"output"`
}

// handleExperiment regenerates one named table/figure driver per-request
// against the server's lab, caching the rendered result.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if s.lab == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, nil, "experiments disabled: server started without a lab")
		return
	}
	name := r.PathValue("name")
	if _, ok := experiments.FindDriver(name); !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, nil, "unknown experiment %q (see /v1/experiments)", name)
		return
	}
	// The lab is static for the server's lifetime, so the key carries no
	// snapshot epoch.
	s.cached(w, nil, "experiment?name="+name, func() any {
		res, err := experiments.RunDriver(s.lab, name)
		if err != nil {
			return experimentResponse{Name: name, Output: err.Error()}
		}
		return experimentResponse{Name: res.Name, ElapsedMS: res.Elapsed.Milliseconds(), Output: res.Output}
	})
}

// handleReload atomically swaps in a fresh generation of the named
// snapshot (default: the default snapshot) from ?path=, or from the
// snapshot's recorded source when path is omitted. In-flight requests keep
// the generation they resolved at dispatch. When an admin token is
// configured every reload requires it (a reload is a full load + cache
// invalidation, too expensive to hand to anonymous clients); without one,
// source-only reloads are open — the dev/demo posture — and explicit
// paths are refused outright.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("snap")
	path := q.Get("path")
	if s.adminToken != "" {
		// Header only: a token in the URL would leak into access logs.
		bearer := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !tokenOK(bearer, s.adminToken) {
			writeErr(w, http.StatusForbidden, CodeUnauthorized, nil, "reload requires the admin token (Authorization: Bearer)")
			return
		}
	} else if path != "" {
		writeErr(w, http.StatusForbidden, CodeUnauthorized, nil, "reload with an explicit path requires the server to be started with an admin token")
		return
	}
	snap, err := s.Reload(name, path)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, metaOf(snap))
}

// tokenOK compares a presented token in constant time.
func tokenOK(got, want string) bool {
	return got != "" && subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}

// normalizeDays sorts and deduplicates a day selection in place, returning
// the (possibly shortened) canonical slice.
func normalizeDays(days []int) []int {
	slices.Sort(days)
	return slices.Compact(days)
}

// daysKey canonicalizes a day list for cache and memo keys. It normalizes a
// copy rather than trusting the caller: the spatial memo holds only
// maxSetEntries populations, and an order- or duplicate-sensitive key would
// make days=2,1 rebuild (and possibly evict) the trie that days=1,2 just
// built. Every selection with the same day set must key identically.
func daysKey(days []int) string {
	norm := normalizeDays(slices.Clone(days))
	parts := make([]string, len(norm))
	for i, d := range norm {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}
