package serve

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// accessRecorder wraps a ResponseWriter to observe what the handler
// actually sent: the first status written and the body byte count.
type accessRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (rec *accessRecorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *accessRecorder) Write(p []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	n, err := rec.ResponseWriter.Write(p)
	rec.bytes += int64(n)
	return n, err
}

// accessLogger emits one structured line per completed request. The
// snapshot and epoch fields come from the X-V6-Snapshot/X-V6-Epoch
// response headers the snapshot dispatcher stamps, so the log names the
// exact generation that answered — across reloads, two lines for the
// same path can legitimately show different epochs. Lines are written
// under a mutex in a single Write call each, so concurrent requests
// never interleave mid-line.
type accessLogger struct {
	mu   sync.Mutex
	w    io.Writer
	next http.Handler
}

func (l *accessLogger) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &accessRecorder{ResponseWriter: w}
	defer func() {
		status := rec.status
		if status == 0 {
			// The handler wrote nothing (or panicked before writing);
			// net/http will answer 200 for the former, 500-ish for the
			// latter — record what we know.
			status = http.StatusOK
		}
		snap := rec.Header().Get("X-V6-Snapshot")
		if snap == "" {
			snap = "-"
		}
		epoch := rec.Header().Get("X-V6-Epoch")
		if epoch == "" {
			epoch = "-"
		}
		line := fmt.Sprintf("time=%s method=%s path=%q snapshot=%s epoch=%s status=%d dur=%.3fms bytes=%d\n",
			start.UTC().Format(time.RFC3339Nano), r.Method, r.URL.RequestURI(),
			snap, epoch, status, float64(time.Since(start).Microseconds())/1000, rec.bytes)
		l.mu.Lock()
		io.WriteString(l.w, line)
		l.mu.Unlock()
	}()
	l.next.ServeHTTP(rec, r)
}
