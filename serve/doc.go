// Package serve is the online query layer over built censuses: an HTTP
// service that loads persisted census snapshots, freezes them, and answers
// concurrent read-only questions — the operational capability Plonka &
// Berger frame their classifiers as enabling (acting on stable addresses),
// as opposed to the batch reports of cmd/v6census and cmd/v6report.
//
// # Architecture
//
// Three layers, all read-only after startup:
//
//   - A snapshot registry: named *Snapshot entries, each wrapping a frozen
//     v6class.Engine (snapshot files load through v6class.Open and freeze
//     immediately, so every query is lock-free and internally parallel).
//     The registry itself is an atomic.Pointer to an immutable table —
//     readers pay one pointer load, never a lock.
//   - Request handlers: each resolves its *Snapshot once at dispatch and
//     computes against that generation only, translating HTTP parameters to
//     the public façade API of the module root (point lookups, stability
//     tables, densify sweeps, top-k aggregates, overlap series; the dense
//     and top-k paths render straight off the streaming iterators) and,
//     when a lab is attached, the per-request experiment drivers of
//     package experiments.
//   - A sharded result cache for the expensive analyses (stability tables,
//     dense sweeps, top-k, experiments): 16 independently locked shards
//     bounded per shard, with arbitrary eviction.
//
// A cache miss on a bulk analysis re-runs the sweep against the frozen
// engine, so the serve path inherits the slab-backed temporal layout
// directly: stability, overlap and epoch sweeps are word-level scans over
// compacted contiguous slabs, tiled across every core regardless of how
// the snapshot was sharded when written (see the Performance section of
// the root package docs). Profiling a production instance goes through
// cmd/v6served's -pprof-addr side listener.
//
// # Cache keying
//
// Cache keys are canonical strings of the form
//
//	<snapshot name>|<epoch>|<endpoint>?<canonical params>
//
// The epoch is a server-unique generation counter bumped by every load, so
// a key can never read a result computed from a different engine: after a
// reload, fresh requests miss (fresh epoch) and recompute against the
// fresh engine, while entries of retired generations are never requested
// again and age out by eviction. Experiment results, computed from the
// immutable lab rather than a snapshot, use a plain "experiment?name=" key
// with no epoch. Handlers are deterministic functions of their key, so
// racing computations of one key are benign (last Put wins, values equal).
// Render-only parameters (dense's limit, topk's k) stay out of the key:
// the sweep is cached once with up to 100 examples/rows and the requested
// cut is applied at render time, so iterating limit or k cannot force the
// expensive sweep to recompute.
//
// # Snapshot reload protocol
//
// POST /v1/reload?snap=NAME&path=FILE loads FILE, freezes it, and swaps it
// in as the new generation of NAME (path omitted re-reads the snapshot's
// recorded source; snap omitted targets the default snapshot). Only
// installed names can be reloaded, and generated snapshots (installed
// without a file source) cannot be source-reloaded. When
// Options.AdminToken is configured, every reload requires it via the
// Authorization: Bearer header (never the URL, which would leak the
// secret into access logs) — a reload is a full load plus
// cache invalidation, too expensive to hand to anonymous clients, so
// production deployments should always set a token. Without one (the
// dev/demo posture) source-only reloads are open and explicit paths are
// refused outright, so an anonymous client can never point the server at
// an arbitrary file. The swap is
// RCU-style: the new generation is built completely off to the side, then
// published with one atomic pointer store. In-flight requests hold the
// *Snapshot they resolved at dispatch and finish against it — a reload
// never fails or torments a running query — and the old engine is
// reclaimed by the garbage collector once the last such request returns.
// Requests dispatched after the store see the new generation, identified
// by the X-V6-Epoch response header. A failed load (missing file, foreign
// format, truncation) leaves the serving generation untouched.
//
// # Live write path
//
// The server can grow a snapshot without a file round-trip. POST
// /v1/ingest?snap=NAME parses aggregated day logs from the request body
// (the "#day N" text format of v6class.ReadLogs) into the snapshot's live
// session: an unfrozen successor generation (v6class.Successor) layered
// over the frozen serving engine. A snapshot has at most one live session;
// the first ingest opens it and later ingests (serialized per session)
// append to it. Nothing ingested is visible to reads — the frozen base
// generation keeps answering every query, and readers cannot observe a
// partial census by construction, because the successor is a different
// object than the one the registry publishes.
//
// POST /v1/freeze?snap=NAME ends the session: the successor is frozen and
// installed through the same locked, epoch-allocating RCU swap as a
// reload, so generations stay strictly monotonic and a reader resolves
// either the complete old census or the complete new one. Before
// publishing, the freeze seeds the new generation's spatial memo: every
// population memoized on the base snapshot is carried forward via
// SpatialSetFrom — extended by the generation's delta rather than rebuilt
// — and is bit-identical to what the first query would otherwise build
// from scratch.
//
// If the snapshot was reloaded while the session was open, its base is no
// longer the serving generation and a plain freeze answers 409 Conflict;
// the client resolves the race explicitly with force=true (install anyway)
// or discard=true (drop the session; also usable without a conflict to
// abandon an ingest). Write-path gating: Options.ReadOnly disables both
// endpoints (403); otherwise Options.AdminToken, when set, is required as
// Authorization: Bearer exactly as for reloads; a tokenless writable
// server is the open dev/demo posture.
//
// # Enumeration and cursor pagination
//
// The bulk enumerations of the engine API — every key, every stable
// address, every lifetime row — are exposed as cursor-paged endpoints, so
// a remote client can walk a million-key census without the server ever
// buffering it. A page request answers up to limit rows (default 1000,
// capped at 10000) plus, when more remain, an opaque cursor token; the
// client passes it back verbatim as ?cursor= to fetch the next page. A
// response without a cursor is the final page.
//
// The cursor is not a server-side handle: it encodes the snapshot name,
// the serving generation's epoch, the canonical query, and the resume
// position, all in one base64url token. That makes pagination stateless —
// the server remembers nothing between pages — and fail-closed: if the
// snapshot is reloaded mid-walk, the next page request's epoch no longer
// matches and the server answers 410 Gone with code "cursor_expired"
// rather than silently splicing two different censuses into one listing.
// A cursor presented against a different snapshot or with different query
// parameters is a 400 bad_param. Clients that keep their own position can
// skip cursors entirely: the key-ordered endpoints accept ?after=KEY
// (resume strictly after that key) and the ranked endpoints accept
// ?offset=N, both of which survive reloads because they name a position
// in the data rather than a generation.
//
// Ordered endpoints yield keys in ascending address order — the same
// global order the engine's KeysOrdered iterator guarantees — so pages
// concatenate into one sorted stream and a resumed walk never repeats or
// skips a key.
//
// # Error envelope
//
// Every error response is a versioned JSON envelope with a stable
// machine-readable code:
//
//	{"error": {"code": "unknown_snapshot", "message": "...", "snapshot": "census", "epoch": 7}}
//
// The codes — bad_param, unknown_snapshot, not_found, day_range,
// not_frozen, frozen, cursor_expired, conflict, unauthorized, overloaded,
// unavailable, internal — are the wire protocol's contract: messages may
// be reworded, codes never change meaning. DecodeError parses an envelope
// back into a *WireError whose Unwrap maps the code onto the module's
// typed sentinels (v6class.ErrConfig, v6class.ErrDayRange,
// ErrCursorExpired, ...), so a client holding only the HTTP response can
// still dispatch with errors.Is exactly as if it had called the engine
// in-process. Package remote is built on precisely this mapping.
//
// # Resilience
//
// The expensive sweep endpoints — /v1/keys, /v1/stable, /v1/lifetimes,
// /v1/mra, /v1/aguri, /v1/targets — run under an admission semaphore
// (Options.SweepConcurrency, default 16). When every slot is busy a sweep
// is shed immediately with HTTP 429, code "overloaded" and a Retry-After
// hint, rather than queued into a goroutine pile-up; the remote client's
// backoff honors the hint and retries on its own. Scalar endpoints are
// never limited: the census keeps answering cheap queries while the
// sweeps are saturated.
//
// A snapshot backed by a cluster coordinator can lose backends at query
// time. Such availability failures answer as HTTP 503, code
// "unavailable", with a Retry-After hint (the error names the dead
// partition); a coordinator built with remote.WithPartialResults instead
// keeps answering from the live majority, and its ErrDegraded annotation
// passes through the handlers untouched — degraded results are results.
//
// /v1/targets is the measurement-loop surface: it trains a package
// target generator on the snapshot's dense regions (over the memoized
// spatial set, so the trie is shared with /v1/dense and friends) and
// answers the ranked candidate stream — addresses worth probing that the
// census has not seen — with the budget capped server-side. The seed is
// part of the cache key, so a fixed (snapshot, epoch, params) query is
// computed once and answered identically thereafter.
//
// # Time travel: the snapshot catalog
//
// Options.Catalog (cmd/v6served -catalog) maps calendar date ranges onto
// historical snapshot files: each CatalogEntry names a file plus the
// inclusive [Start, End] dates its study period covers, with Start being
// study day 0. GET /v1/at?date=YYYY-MM-DD resolves a date to its entry and
// reports the covering snapshot's metadata — name, source, day index,
// format version, file size, epoch. GET /v1/at/{endpoint}?date=... goes
// further and re-dispatches to any read endpoint against that snapshot:
// the request is re-routed with the resolved generation pinned (bypassing
// ?snap=) and the date's day index injected as the day/ref parameter when
// the caller gave none, so /v1/at/summary?date=2015-03-17 answers the
// Table-1 tally of that calendar day directly, and explicit day/days/from
// or ref parameters still win when present.
//
// Catalog snapshots are loaded lazily on first use — Open's v2 path maps
// the file rather than decoding it, so a cold hit costs about one page
// fault per touched page, not a parse of the whole census — and at most
// Options.CatalogResident of them (default 4) stay resident under LRU;
// eviction drops the reference and the garbage collector reclaims the
// engine (and unmaps the file) once its last in-flight request returns.
// Every load allocates a fresh epoch from the same server-wide counter as
// installs, so the shared result cache keys catalog generations exactly
// like registry generations and an evicted-and-reloaded snapshot can never
// be served stale results. Catalog snapshots live outside the registry:
// they are not listed in /healthz, cannot be reloaded or ingested into,
// and never become the default snapshot.
//
// When Options.AccessLog is set (cmd/v6served -access-log), every
// request is logged after completion as one structured line — method,
// path, resolved snapshot and epoch, status, duration, response bytes —
// written with a single serialized Write so concurrent requests never
// interleave. "-" as the flag value logs to stdout.
//
// cmd/v6served completes the story on the process level: SIGTERM/SIGINT
// triggers a graceful shutdown that refuses new connections and drains
// in-flight requests for -drain-timeout (default 10s) before aborting
// the stragglers, logging a one-line summary either way. The server
// carries read-header and idle timeouts so stalled peers cannot pin
// connections.
//
// # Endpoints
//
//	GET  /healthz                 liveness, snapshot names, cache stats
//	GET  /v1/meta                 snapshot metadata and key counts
//	GET  /v1/summary?day=         Table 1 format tally of one day
//	GET  /v1/stability?pop=&ref=&n=&window=[&weekly=true]   nd-stable split
//	GET  /v1/lookup?addr=|p64=[&ref=&n=&window=]            point lookup
//	GET  /v1/dense?day=|days=|from=&to=&n=&p=[&least=true]  n@/p-dense sweep
//	GET  /v1/topk?pop=&p=&k=&day=|days=|from=&to=           top-k aggregates
//	GET  /v1/overlap?pop=&ref=&before=&after=               Figure 4 series
//	GET  /v1/keys?pop=[&days=][&limit=&after=|cursor=]      ordered key pages
//	GET  /v1/stable?ref=&n=[&limit=&after=|cursor=]         ordered stable addrs
//	GET  /v1/lifetimes?pop=[&limit=&after=|cursor=]         ordered lifetime pages
//	GET  /v1/lifetimes/stats?from=&to=                      lifetime histograms
//	GET  /v1/active?pop=&day=|from=&to=                     active-key count
//	GET  /v1/epoch?pop=&afrom=&ato=&bfrom=&bto=             epoch-stable count
//	GET  /v1/returnprob?pop=&from=&to=&maxgap=              return probability
//	GET  /v1/lsp?afrom=&ato=&bfrom=&bto=&minbits=&minsupport=  stable prefixes
//	GET  /v1/mra?pop=[&days=]                               MRA profile
//	GET  /v1/aguri?pop=[&days=]&fraction=                   aguri profile
//	GET  /v1/targets?budget=&n=&p=&per64=&seed=[&days=]     ranked probe candidates
//	GET  /v1/snapshot[?info=1]                              stream the census file (info=1: format/size/source)
//	GET  /v1/at?date=                                       catalog resolution for a calendar date
//	GET  /v1/at/{endpoint}?date=                            any read endpoint against the covering snapshot
//	GET  /v1/experiments[/{name}]                           driver registry
//	POST /v1/reload?snap=&path=                             swap a snapshot
//	POST /v1/ingest?snap=                                   feed day logs to the live successor
//	POST /v1/freeze?snap=[&force=true|&discard=true]        install (or drop) the successor
//
// The paged form of /v1/topk (any of page=true, offset= or cursor=)
// ranks once, memoizes the full ranking under the query's cache key, and
// serves offset/limit cuts of it; the classic form is unchanged.
//
// Every snapshot-backed endpoint accepts ?snap=NAME to select among the
// loaded snapshots; the default is the most recently installed one. Day
// selections (day=N, days=N,M,... or from=N&to=N) are normalized — sorted
// and deduplicated — before keying or echoing, so every spelling of the
// same day set shares one cached population build.
package serve
