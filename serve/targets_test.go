package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"v6class"
)

// targetsEngine builds a tiny frozen engine whose one dense /116 region
// has exactly one unseen model candidate (2001:db8::212): three members
// share nybble values such that the marginal-smoothed chain admits a
// 2×1×2 path space, three paths of which are census members.
func targetsEngine(t *testing.T) v6class.Engine {
	t.Helper()
	eng, err := v6class.New(v6class.WithStudyDays(30))
	if err != nil {
		t.Fatal(err)
	}
	var recs []v6class.Record
	for _, s := range []string{"2001:db8::111", "2001:db8::211", "2001:db8::112"} {
		recs = append(recs, v6class.Record{Addr: v6class.MustParseAddr(s), Hits: 1})
	}
	if err := eng.AddDay(v6class.DayLog{Day: 0, Records: recs}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestTargetsEndpoint(t *testing.T) {
	s := New(Options{})
	s.Install("t", "", targetsEngine(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp targetsResponse
	r := get(t, ts, "/v1/targets?day=0&n=3&p=116&budget=8", &resp)
	if r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	if len(resp.Regions) != 1 || !strings.HasPrefix(resp.Regions[0], "2001:db8::/") {
		t.Fatalf("regions = %v, want one region under 2001:db8::", resp.Regions)
	}
	if len(resp.Targets) != 1 || resp.Targets[0].Addr != "2001:db8::212" {
		t.Fatalf("targets = %+v, want exactly 2001:db8::212", resp.Targets)
	}
	if resp.Targets[0].Region != resp.Regions[0] || resp.Targets[0].Score >= 0 {
		t.Errorf("target row %+v: want region echo and negative log2 score", resp.Targets[0])
	}

	// Same query again is served from cache, byte-identical.
	var resp2 targetsResponse
	get(t, ts, "/v1/targets?day=0&n=3&p=116&budget=8", &resp2)
	if resp2.Targets[0] != resp.Targets[0] {
		t.Errorf("repeat query diverged: %+v vs %+v", resp2.Targets[0], resp.Targets[0])
	}

	// Parameter validation speaks the envelope vocabulary.
	for _, q := range []string{
		"/v1/targets",                      // missing day selection
		"/v1/targets?day=0&budget=0",       // non-positive budget
		"/v1/targets?day=0&p=200",          // prefix length out of range
		"/v1/targets?day=0&seed=not-a-num", // malformed seed
	} {
		var env errEnvelope
		if r := get(t, ts, q, &env); r.StatusCode != 400 || env.Error == nil || env.Error.Code != CodeBadParam {
			t.Errorf("GET %s: status %d, envelope %+v; want 400 bad_param", q, r.StatusCode, env.Error)
		}
	}
}

// TestAccessLog exercises the Options.AccessLog middleware: one
// structured line per request, naming the snapshot generation that
// answered (or "-" before resolution).
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Options{AccessLog: &buf})
	s.Install("t", "", targetsEngine(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts, "/v1/meta", nil)
	get(t, ts, "/v1/meta?snap=nope", nil)

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, want := range []string{
		`method=GET path="/v1/meta" snapshot=t epoch=1 status=200`,
		`method=GET path="/v1/meta?snap=nope" snapshot=- epoch=- status=404`,
	} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %q, want substring %q", i, lines[i], want)
		}
		for _, field := range []string{"time=", "dur=", "bytes="} {
			if !strings.Contains(lines[i], field) {
				t.Errorf("line %d missing %s field: %q", i, field, lines[i])
			}
		}
	}
}
