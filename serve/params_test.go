package serve

import (
	"net/url"
	"reflect"
	"strings"
	"testing"

	"v6class"
)

// The round-trip contract of the shared parameter vocabulary: whatever the
// client side (package remote) encodes, the handler side must decode back
// to the identical value — the property that makes one vocabulary safe to
// share between both halves of the wire.

func TestPopRoundTrip(t *testing.T) {
	for _, pop := range []v6class.Population{v6class.Addresses, v6class.Prefixes64} {
		v := url.Values{}
		EncodePop(v, pop)
		got, name, err := DecodePop(v)
		if err != nil {
			t.Fatalf("DecodePop(%v): %v", v, err)
		}
		if got != pop || name != PopName(pop) {
			t.Errorf("pop %v round-tripped to %v (%q)", pop, got, name)
		}
	}
	// Accepted aliases normalize to the canonical spelling.
	aliases := map[string]string{
		"": "addrs", "addrs": "addrs", "addresses": "addrs",
		"64s": "64s", "p64": "64s", "prefixes64": "64s",
	}
	for alias, want := range aliases {
		v := url.Values{}
		if alias != "" {
			v.Set("pop", alias)
		}
		if _, name, err := DecodePop(v); err != nil || name != want {
			t.Errorf("alias %q: name %q err %v, want %q", alias, name, err, want)
		}
	}
	v := url.Values{"pop": {"nope"}}
	if _, _, err := DecodePop(v); err == nil {
		t.Error("unknown population accepted")
	}
}

func TestDaysRoundTrip(t *testing.T) {
	cases := [][]int{
		{4},
		{1, 2, 3},
		{9, 3, 21}, // encoder normalizes; decoder must agree
	}
	for _, days := range cases {
		v := url.Values{}
		EncodeDays(v, days)
		got, err := DecodeDaysOptional(v)
		if err != nil {
			t.Fatalf("DecodeDaysOptional(%v): %v", v, err)
		}
		want := normalizeDays(append([]int(nil), days...))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("days %v round-tripped to %v, want %v", days, got, want)
		}
	}
	// No selection encodes to no field and decodes to nil.
	v := url.Values{}
	EncodeDays(v, nil)
	if len(v) != 0 {
		t.Errorf("empty selection encoded fields: %v", v)
	}
	if got, err := DecodeDaysOptional(v); err != nil || got != nil {
		t.Errorf("empty selection decoded to %v, %v", got, err)
	}
	// The required form refuses an absent selection...
	if _, err := DecodeDays(v); err == nil {
		t.Error("DecodeDays accepted an absent selection")
	}
	// ...and the range spelling decodes to the same normalized form.
	v = url.Values{"from": {"3"}, "to": {"6"}}
	if got, err := DecodeDays(v); err != nil || !reflect.DeepEqual(got, []int{3, 4, 5, 6}) {
		t.Errorf("range decoded to %v, %v", got, err)
	}
	for _, bad := range []url.Values{
		{"from": {"5"}, "to": {"2"}},
		{"from": {"5"}},
		{"days": {"1,x"}},
	} {
		if _, err := DecodeDays(bad); err == nil {
			t.Errorf("bad selection %v accepted", bad)
		}
	}
}

func TestWindowRoundTrip(t *testing.T) {
	cases := []v6class.StabilityOptions{
		{},
		{Window: v6class.StabilityWindow{Before: 7, After: 7}},
		{Window: v6class.StabilityWindow{Before: 3, After: 3}},
		{Window: v6class.StabilityWindow{Before: 3, After: 2}},
		{Window: v6class.StabilityWindow{Before: 0, After: 5}},
		{Window: v6class.StabilityWindow{Before: 4, After: 4}, SlewDays: 2},
		{Window: v6class.StabilityWindow{Before: 2, After: 6}, SlewDays: 1, AnyPair: true},
	}
	for _, opts := range cases {
		v := url.Values{}
		EncodeWindow(v, opts)
		got, echo, err := DecodeWindow(v)
		if err != nil {
			t.Fatalf("DecodeWindow(%v): %v", v, err)
		}
		// The zero window means the paper default; the decode comes back
		// explicit.
		want := opts
		if want.Window == (v6class.StabilityWindow{}) {
			want.Window = v6class.StabilityWindow{Before: 7, After: 7}
		}
		if got != want {
			t.Errorf("opts %+v round-tripped to %+v", opts, got)
		}
		wantEcho := 0
		if want.Window.Before == want.Window.After {
			wantEcho = want.Window.Before
		}
		if echo != wantEcho {
			t.Errorf("opts %+v: symmetric echo %d, want %d", opts, echo, wantEcho)
		}
	}
	for _, bad := range []url.Values{
		{"window": {"0"}},
		{"window": {"x"}},
		{"wbefore": {"3"}}, // asymmetric needs both halves
		{"wbefore": {"-1"}, "wafter": {"2"}},
		{"slew": {"-2"}},
	} {
		if _, _, err := DecodeWindow(bad); err == nil {
			t.Errorf("bad window %v accepted", bad)
		}
	}
}

func TestCursorRoundTrip(t *testing.T) {
	cases := []Cursor{
		{Snapshot: "census", Epoch: 1, Query: "keys?pop=addrs&days=", Pos: "2001:db8::1/128"},
		{Snapshot: "with|pipe", Epoch: 18446744073709551615, Query: "topk?pop=64s&p=48&days=0,1&page", Pos: "42"},
		{Snapshot: "", Epoch: 0, Query: "", Pos: ""},
		{Snapshot: "snap name", Epoch: 7, Query: "q&r=|x", Pos: "p|q"},
	}
	for _, c := range cases {
		got, err := DecodeCursor(c.Encode())
		if err != nil {
			t.Fatalf("DecodeCursor(Encode(%+v)): %v", c, err)
		}
		if got != c {
			t.Errorf("cursor %+v round-tripped to %+v", c, got)
		}
	}
	for _, bad := range []string{
		"not base64url!",
		"djJ8eHx5fHp8dw", // v2|x|y|z|w: foreign version
		"eA",             // x: too few fields
	} {
		if _, err := DecodeCursor(bad); err == nil {
			t.Errorf("bad cursor %q accepted", bad)
		}
	}
	// Cursors must survive a URL query-string round trip unchanged.
	c := Cursor{Snapshot: "census", Epoch: 3, Query: "stable?ref=14&n=3", Pos: "2001:db8::5"}
	v := url.Values{}
	v.Set("cursor", c.Encode())
	if !strings.Contains(v.Encode(), "cursor=") {
		t.Fatal("cursor missing from encoded query")
	}
	parsed, err := url.ParseQuery(v.Encode())
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	got, err := DecodeCursor(parsed.Get("cursor"))
	if err != nil || got != c {
		t.Errorf("cursor through query string: %+v, %v", got, err)
	}
}

func TestDecodeLimit(t *testing.T) {
	if got, err := DecodeLimit(url.Values{}, 1000, 10000); err != nil || got != 1000 {
		t.Errorf("default limit: %d, %v", got, err)
	}
	if got, err := DecodeLimit(url.Values{"limit": {"50"}}, 1000, 10000); err != nil || got != 50 {
		t.Errorf("explicit limit: %d, %v", got, err)
	}
	if got, err := DecodeLimit(url.Values{"limit": {"99999"}}, 1000, 10000); err != nil || got != 10000 {
		t.Errorf("clamped limit: %d, %v", got, err)
	}
	for _, bad := range []string{"0", "-3", "x"} {
		if _, err := DecodeLimit(url.Values{"limit": {bad}}, 1000, 10000); err == nil {
			t.Errorf("bad limit %q accepted", bad)
		}
	}
}
