package serve

import (
	"context"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"v6class"
)

// The time-travel surface: a serve instance configured with a Catalog can
// answer any read endpoint against the historical snapshot covering a
// calendar date. GET /v1/at?date=YYYY-MM-DD resolves the date to its
// catalog entry and reports the snapshot's metadata (including the date's
// day index within that snapshot's study period); GET /v1/at/{endpoint}
// re-dispatches the request to /v1/{endpoint} with the resolved snapshot
// pinned, so every existing read handler — summaries, stability, dense
// classes, enumerations — works unchanged across the whole archive.
// Catalog snapshots load lazily on first use and at most a configured
// number stay resident (LRU); each loaded generation gets its own epoch, so
// the shared result cache keys them exactly like registry snapshots.

// CatalogEntry describes one historical snapshot file and the inclusive
// calendar date range its study period covers: Start is day 0 of the
// snapshot's study, and a queried date maps to day index date-Start.
type CatalogEntry struct {
	// Name identifies the entry in /v1/at responses and headers.
	Name string
	// Path is the snapshot file (either format; Open sniffs it).
	Path string
	// Start is the calendar date of study day 0 (UTC; time-of-day ignored).
	Start time.Time
	// End is the last covered calendar date, inclusive.
	End time.Time
}

// pinnedSnapshotKey carries a resolved catalog snapshot through the request
// context into snapshotHandler, overriding ?snap= resolution.
type pinnedSnapshotKey struct{}

// catalog is the lazily loaded, LRU-bounded residency set over the
// configured entries.
type catalog struct {
	s       *Server
	entries []CatalogEntry // sorted by Start
	budget  int

	mu       sync.Mutex
	resident map[string]*Snapshot
	order    []string // most recently used first
}

// defaultCatalogResident is the residency budget when Options leaves
// CatalogResident zero.
const defaultCatalogResident = 4

func newCatalog(s *Server, entries []CatalogEntry, budget int) *catalog {
	if budget <= 0 {
		budget = defaultCatalogResident
	}
	sorted := make([]CatalogEntry, len(entries))
	copy(sorted, entries)
	for i := range sorted {
		sorted[i].Start = dateOnly(sorted[i].Start)
		sorted[i].End = dateOnly(sorted[i].End)
	}
	slices.SortStableFunc(sorted, func(a, b CatalogEntry) int {
		return a.Start.Compare(b.Start)
	})
	return &catalog{s: s, entries: sorted, budget: budget, resident: map[string]*Snapshot{}}
}

func dateOnly(t time.Time) time.Time {
	y, m, d := t.UTC().Date()
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// lookup finds the first entry covering date (entries are sorted by Start;
// overlapping ranges resolve to the earliest).
func (c *catalog) lookup(date time.Time) (CatalogEntry, bool) {
	for _, e := range c.entries {
		if !date.Before(e.Start) && !date.After(e.End) {
			return e, true
		}
	}
	return CatalogEntry{}, false
}

// snapshotFor returns the loaded snapshot of a catalog entry, loading it on
// first use and evicting the least recently used resident snapshots past
// the budget. Evicted generations keep serving their in-flight requests and
// are garbage-collected when the last one returns.
func (c *catalog) snapshotFor(e CatalogEntry) (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if snap, ok := c.resident[e.Name]; ok {
		c.touch(e.Name)
		return snap, nil
	}
	info, err := v6class.SniffSnapshot(e.Path)
	if err != nil {
		return nil, err
	}
	eng, err := v6class.Open(e.Path)
	if err != nil {
		return nil, err
	}
	if err := eng.Freeze(); err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Name:      e.Name,
		Source:    e.Path,
		Epoch:     c.s.nextEpoch.Add(1),
		LoadedAt:  time.Now(),
		Engine:    eng,
		Format:    info.Version,
		SizeBytes: info.Size,
	}
	c.resident[e.Name] = snap
	c.order = append([]string{e.Name}, c.order...)
	for len(c.order) > c.budget {
		last := c.order[len(c.order)-1]
		c.order = c.order[:len(c.order)-1]
		delete(c.resident, last)
	}
	return snap, nil
}

// touch moves a resident entry to the front of the LRU order.
func (c *catalog) touch(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append([]string{name}, append(c.order[:i:i], c.order[i+1:]...)...)
			return
		}
	}
}

// Resident returns the names of the currently loaded catalog snapshots,
// most recently used first (diagnostics and tests).
func (c *catalog) Resident() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return slices.Clone(c.order)
}

// atResponse is the GET /v1/at metadata envelope.
type atResponse struct {
	Date      string `json:"date"`
	Snapshot  string `json:"snapshot"`
	Source    string `json:"source"`
	Start     string `json:"start"`
	End       string `json:"end"`
	DayIndex  int    `json:"dayIndex"`
	StudyDays int    `json:"studyDays"`
	Epoch     uint64 `json:"epoch"`
	Format    int    `json:"format"`
	SizeBytes int64  `json:"sizeBytes"`
}

// handleAt serves both time-travel forms: /v1/at?date=D reports which
// snapshot covers the date, and /v1/at/{endpoint}?date=D re-dispatches the
// request to /v1/{endpoint} against that snapshot — with the date's day
// index supplied as the day/ref parameter when the caller gave none, so
// `/v1/at/summary?date=2015-03-17` answers directly.
func (s *Server) handleAt(w http.ResponseWriter, r *http.Request) {
	if len(s.catalog.entries) == 0 {
		writeErr(w, http.StatusNotFound, CodeNotFound, nil, "no snapshot catalog configured")
		return
	}
	dateStr := r.URL.Query().Get("date")
	if dateStr == "" {
		writeErr(w, http.StatusBadRequest, CodeBadParam, nil, "missing required parameter date (YYYY-MM-DD)")
		return
	}
	date, err := time.ParseInLocation("2006-01-02", dateStr, time.UTC)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, nil, "bad date %q: want YYYY-MM-DD", dateStr)
		return
	}
	entry, ok := s.catalog.lookup(date)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, nil, "no catalog snapshot covers %s", dateStr)
		return
	}
	snap, err := s.catalog.snapshotFor(entry)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, nil, "loading catalog snapshot %q: %v", entry.Name, err)
		return
	}
	dayIndex := int(date.Sub(entry.Start) / (24 * time.Hour))

	rest := r.PathValue("rest")
	if rest == "" {
		w.Header().Set("X-V6-Snapshot", snap.Name)
		w.Header().Set("X-V6-Epoch", strconv.FormatUint(snap.Epoch, 10))
		writeJSON(w, http.StatusOK, atResponse{
			Date:      dateStr,
			Snapshot:  entry.Name,
			Source:    entry.Path,
			Start:     entry.Start.Format("2006-01-02"),
			End:       entry.End.Format("2006-01-02"),
			DayIndex:  dayIndex,
			StudyDays: snap.Engine.StudyDays(),
			Epoch:     snap.Epoch,
			Format:    snap.Format,
			SizeBytes: snap.SizeBytes,
		})
		return
	}
	if rest == "at" || strings.HasPrefix(rest, "at/") {
		writeErr(w, http.StatusBadRequest, CodeBadParam, nil, "cannot nest /v1/at")
		return
	}

	// Re-dispatch through the route table with the snapshot pinned. The
	// date translates to this snapshot's day index for endpoints the caller
	// did not explicitly day-qualify.
	r2 := r.Clone(context.WithValue(r.Context(), pinnedSnapshotKey{}, snap))
	r2.URL.Path = "/v1/" + rest
	r2.SetPathValue("rest", "")
	q := r2.URL.Query()
	q.Del("date")
	q.Del("snap")
	if !q.Has("day") && !q.Has("days") && !q.Has("from") {
		q.Set("day", strconv.Itoa(dayIndex))
	}
	if !q.Has("ref") {
		q.Set("ref", strconv.Itoa(dayIndex))
	}
	r2.URL.RawQuery = q.Encode()
	s.muxOnce.Do(s.buildMux)
	s.mux.ServeHTTP(w, r2)
}
