package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"v6class"
	"v6class/experiments"
	"v6class/internal/core"
	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
	"v6class/synth"
)

// buildCensus ingests the synthetic world's days [from, to] sequentially.
func buildCensus(t testing.TB, from, to int) *core.Census {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01, StudyDays: 30})
	c := core.NewCensus(core.CensusConfig{StudyDays: 30})
	for d := from; d <= to; d++ {
		c.AddDay(w.Day(d))
	}
	return c
}

// writeSnapshot persists a census to a temp file and returns the path.
func writeSnapshot(t testing.TB, c *core.Census, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// get fetches a path from the test server and decodes the JSON into out,
// returning the response for header/status inspection.
func get(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", path, body, err)
		}
	}
	return resp
}

// TestHandlersMatchAnalyzer asserts every snapshot-backed endpoint returns
// exactly what the underlying Analyzer computes directly.
func TestHandlersMatchAnalyzer(t *testing.T) {
	direct := buildCensus(t, 5, 19)
	path := writeSnapshot(t, direct, "a.state")
	s := New(Options{})
	if _, err := s.LoadFile("a", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("meta", func(t *testing.T) {
		var m metaResponse
		resp := get(t, ts, "/v1/meta", &m)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if m.StudyDays != direct.StudyDays() || m.Addresses != direct.Keys(core.Addresses) || m.Prefixes64 != direct.Keys(core.Prefixes64) {
			t.Errorf("meta %+v disagrees with analyzer (%d days, %d addrs, %d /64s)",
				m, direct.StudyDays(), direct.Keys(core.Addresses), direct.Keys(core.Prefixes64))
		}
		if resp.Header.Get("X-V6-Snapshot") != "a" {
			t.Errorf("snapshot header %q", resp.Header.Get("X-V6-Snapshot"))
		}
	})

	t.Run("summary", func(t *testing.T) {
		var got summaryResponse
		get(t, ts, "/v1/summary?day=12", &got)
		want := direct.Summary(12)
		if got.Total != want.Total || got.Native != want.Native || got.Addrs64 != want.Addrs64 || got.MACs != want.MACs {
			t.Errorf("summary %+v vs direct %+v", got, want)
		}
		for k, n := range want.ByKind {
			if got.ByKind[k.String()] != n {
				t.Errorf("kind %v: %d vs %d", k, got.ByKind[k.String()], n)
			}
		}
	})

	t.Run("stability", func(t *testing.T) {
		opts := temporal.Options{Window: temporal.Window{Before: 5, After: 5}}
		for _, pop := range []struct {
			name string
			p    core.Population
		}{{"addrs", core.Addresses}, {"64s", core.Prefixes64}} {
			var got stabilityResponse
			get(t, ts, "/v1/stability?pop="+pop.name+"&ref=12&n=3&window=5", &got)
			want := direct.StabilityWith(pop.p, 12, 3, opts)
			if got.Active != want.Active || got.Stable != want.Stable || got.NotStable != want.NotStable {
				t.Errorf("pop %s: %+v vs direct %+v", pop.name, got, want)
			}
		}
		var weekly stabilityResponse
		get(t, ts, "/v1/stability?pop=addrs&ref=10&n=3&weekly=true", &weekly)
		wantW := direct.WeeklyStability(core.Addresses, 10, 3)
		if weekly.Active != wantW.Active || weekly.Stable != wantW.Stable {
			t.Errorf("weekly %+v vs direct %+v", weekly, wantW)
		}
		// Weekly ignores window, so the response must not echo one and
		// any window value must yield the identical (cached-once) body.
		var weeklyW3 stabilityResponse
		get(t, ts, "/v1/stability?pop=addrs&ref=10&n=3&weekly=true&window=3", &weeklyW3)
		if weeklyW3.Window != 0 || weekly.Window != 0 {
			t.Errorf("weekly responses must echo window 0, got %d and %d", weekly.Window, weeklyW3.Window)
		}
		if weeklyW3 != weekly {
			t.Errorf("weekly with window=3 differs: %+v vs %+v", weeklyW3, weekly)
		}
	})

	t.Run("lookup", func(t *testing.T) {
		addrs := direct.AddrsActiveOn(12)
		if len(addrs) == 0 {
			t.Fatal("no active addresses on day 12")
		}
		a := addrs[0]
		var got lookupResponse
		get(t, ts, "/v1/lookup?addr="+a.String()+"&ref=12&n=3&window=7", &got)
		want := direct.LookupAddr(a)
		if got.Address == nil || !reflect.DeepEqual(*got.Address, want.Report) {
			t.Errorf("lookup address report %+v vs direct %+v", got.Address, want.Report)
		}
		if !reflect.DeepEqual(got.Prefix64, want.Prefix64) {
			t.Errorf("lookup /64 report %+v vs direct %+v", got.Prefix64, want.Prefix64)
		}
		if got.Kind != want.Kind.String() {
			t.Errorf("kind %q vs %q", got.Kind, want.Kind)
		}
		opts := temporal.Options{Window: temporal.Window{Before: 7, After: 7}}
		if got.Stable == nil || *got.Stable != direct.AddrStable(a, 12, 3, opts) {
			t.Errorf("stable %v vs direct %v", got.Stable, direct.AddrStable(a, 12, 3, opts))
		}

		// Bare /64 lookup agrees with the address's prefix64 report.
		p64 := ipaddr.PrefixFrom(a, 64)
		var gotP lookupResponse
		get(t, ts, "/v1/lookup?p64="+p64.String(), &gotP)
		if !reflect.DeepEqual(gotP.Prefix64, want.Prefix64) {
			t.Errorf("p64 lookup %+v vs direct %+v", gotP.Prefix64, want.Prefix64)
		}

		// An address the census never saw is known:false but classified.
		var missing lookupResponse
		get(t, ts, "/v1/lookup?addr=2001:db8:ffff:ffff::1", &missing)
		if missing.Address == nil || missing.Address.Known {
			t.Errorf("unknown address should report known:false, got %+v", missing.Address)
		}
		if missing.Kind == "" {
			t.Error("unknown address should still be format-classified")
		}
	})

	t.Run("dense", func(t *testing.T) {
		var got denseResponse
		get(t, ts, "/v1/dense?day=12&n=2&p=112", &got)
		want := direct.NativeSet(12).DenseFixed(denseClass(2, 112))
		if got.Prefixes != len(want.Prefixes) || got.Covered != want.CoveredAddresses || got.Density != want.Density() {
			t.Errorf("dense %+v vs direct %d prefixes covered %d", got, len(want.Prefixes), want.CoveredAddresses)
		}
		var least denseResponse
		get(t, ts, "/v1/dense?from=5&to=19&n=2&p=112&least=true", &least)
		wantL := direct.NativeSet(rangeDays(5, 19)...).DenseLeastSpecific(denseClass(2, 112))
		if least.Prefixes != len(wantL.Prefixes) || least.Covered != wantL.CoveredAddresses {
			t.Errorf("densify %+v vs direct %d prefixes", least, len(wantL.Prefixes))
		}
	})

	t.Run("topk", func(t *testing.T) {
		var got topkResponse
		get(t, ts, "/v1/topk?pop=addrs&p=48&k=5&day=12", &got)
		want := direct.TopAggregates(core.Addresses, 48, 5, 12)
		if len(got.Rows) != len(want) {
			t.Fatalf("topk rows %d vs %d", len(got.Rows), len(want))
		}
		for i, row := range got.Rows {
			if row.Prefix != want[i].Prefix.String() || row.Count != want[i].Count {
				t.Errorf("row %d: %+v vs %v %d", i, row, want[i].Prefix, want[i].Count)
			}
		}
	})

	t.Run("overlap", func(t *testing.T) {
		var got overlapResponse
		get(t, ts, "/v1/overlap?pop=addrs&ref=12&before=5&after=5", &got)
		want := direct.OverlapSeries(core.Addresses, 12, 5, 5)
		if !reflect.DeepEqual(got.Series, want) {
			t.Errorf("overlap %v vs direct %v", got.Series, want)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for path, status := range map[string]int{
			"/v1/summary":                             400, // missing day
			"/v1/stability?pop=bogus":                 400,
			"/v1/stability?pop=addrs":                 400, // missing ref
			"/v1/lookup":                              400, // missing key
			"/v1/lookup?addr=not-an-ip":               400,
			"/v1/lookup?p64=2001:db8::/48":            400, // census keys /64s only
			"/v1/stability?pop=addrs&ref=12&n=0":      400, // degenerate n
			"/v1/lookup?addr=2001:db8::1&n=-3":        400,
			"/v1/dense?n=2&p=112":                     400, // missing day selection
			"/v1/dense?day=1&p=200":                   400,
			"/v1/topk?day=1&k=0":                      400,
			"/v1/meta?snap=nope":                      404,
			"/v1/summary?day=12&snap=x":               404,
			"/v1/dense?from=9&to=2&n=1":               400,
			"/v1/overlap?pop=addrs":                   400,
			"/v1/stability?pop=addrs&ref=2&window=-1": 400,
		} {
			resp := get(t, ts, path, nil)
			if resp.StatusCode != status {
				t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, status)
			}
		}
	})
}

func denseClass(n uint64, p int) v6class.DensityClass { return v6class.DensityClass{N: n, P: p} }

func rangeDays(from, to int) []int {
	var out []int
	for d := from; d <= to; d++ {
		out = append(out, d)
	}
	return out
}

// TestCacheServesRepeatQueries asserts the second identical expensive query
// is a cache hit with an identical body.
func TestCacheServesRepeatQueries(t *testing.T) {
	direct := buildCensus(t, 5, 19)
	s := New(Options{})
	s.Install("a", "test", v6class.FromAnalyzer(direct))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const q = "/v1/dense?from=5&to=19&n=2&p=112&least=true"
	var first, second denseResponse
	get(t, ts, q, &first)
	h0, _ := s.cache.Stats()
	get(t, ts, q, &second)
	h1, _ := s.cache.Stats()
	if h1 != h0+1 {
		t.Errorf("second query should hit the cache (hits %d -> %d)", h0, h1)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached response differs: %+v vs %+v", first, second)
	}

	// limit is render-only: a different limit renders a truncated copy of
	// the memoized limit-free sweep struct — no recompute, no decode of a
	// cached body.
	snap := s.Snapshot("a")
	var limited denseResponse
	get(t, ts, q+"&limit=1", &limited)
	if len(limited.Examples) > 1 {
		t.Errorf("limit=1 returned %d examples", len(limited.Examples))
	}
	if limited.Prefixes != first.Prefixes || limited.Covered != first.Covered {
		t.Errorf("limited response changed the sweep results: %+v vs %+v", limited, first)
	}
	if got := len(snap.results.entries); got != 1 {
		t.Errorf("limit variation built %d sweep structs, want the 1 shared one", got)
	}

	// k is render-only on topk the same way, and dense + topk over the
	// same day selection share one spatial population build.
	var top5, top2 topkResponse
	get(t, ts, "/v1/topk?pop=addrs&p=48&k=5&from=5&to=19", &top5)
	get(t, ts, "/v1/topk?pop=addrs&p=48&k=2&from=5&to=19", &top2)
	if len(top2.Rows) != 2 || top2.K != 2 || !reflect.DeepEqual(top2.Rows, top5.Rows[:2]) {
		t.Errorf("k=2 rows %+v inconsistent with k=5 rows %+v", top2.Rows, top5.Rows)
	}
	if top2.Occupied != top5.Occupied {
		t.Errorf("occupied changed with k: %d vs %d", top2.Occupied, top5.Occupied)
	}
	if got := len(snap.results.entries); got != 2 {
		t.Errorf("k variation built %d memoized structs, want 2 (one dense, one topk)", got)
	}
	if got := len(snap.sets.entries); got != 1 {
		t.Errorf("dense and topk built %d populations for the same days, want the 1 shared build", got)
	}

	// The per-limit rendered bodies themselves are byte-cache hits on
	// repeat.
	hits0, _ := s.cache.Stats()
	var again topkResponse
	get(t, ts, "/v1/topk?pop=addrs&p=48&k=2&from=5&to=19", &again)
	if hits1, _ := s.cache.Stats(); hits1 != hits0+1 {
		t.Errorf("repeat k=2 query should hit the render cache (hits %d -> %d)", hits0, hits1)
	}
	if !reflect.DeepEqual(again, top2) {
		t.Errorf("cached render differs: %+v vs %+v", again, top2)
	}
}

// TestConcurrentClientsWithReload is the acceptance scenario: 8 concurrent
// clients issue queries under -race while snapshots are live-swapped via
// /v1/reload; every response must succeed and match one of the two
// generations exactly.
func TestConcurrentClientsWithReload(t *testing.T) {
	censusA := buildCensus(t, 5, 12) // generation A: days 5-12 only
	censusB := buildCensus(t, 5, 19) // generation B: days 5-19
	pathA := writeSnapshot(t, censusA, "a.state")
	pathB := writeSnapshot(t, censusB, "b.state")

	optsDefault := temporal.Options{Window: temporal.Window{Before: 7, After: 7}}
	stabA := censusA.StabilityWith(core.Addresses, 12, 3, optsDefault)
	stabB := censusB.StabilityWith(core.Addresses, 12, 3, optsDefault)
	if stabA == stabB {
		t.Fatal("test needs generations with distinguishable stability results")
	}
	sumA, sumB := censusA.Summary(15), censusB.Summary(15)
	if sumA.Total == sumB.Total {
		t.Fatal("test needs generations with distinguishable day-15 summaries")
	}

	s := New(Options{AdminToken: "swap-secret"})
	if _, err := s.LoadFile("live", pathA); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	const perClient = 30
	stop := make(chan struct{})
	var wg, clientsDone sync.WaitGroup

	// The reloader swaps A <-> B for the test's whole duration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := []string{pathB, pathA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req, err := http.NewRequest("POST", ts.URL+"/v1/reload?snap=live&path="+paths[i%2], nil)
			if err != nil {
				t.Errorf("reload request: %v", err)
				return
			}
			req.Header.Set("Authorization", "Bearer swap-secret")
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("reload status %d", resp.StatusCode)
				return
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		clientsDone.Add(1)
		go func(c int) {
			defer wg.Done()
			defer clientsDone.Done()
			for i := 0; i < perClient; i++ {
				switch i % 2 {
				case 0:
					var got stabilityResponse
					resp := get(t, ts, "/v1/stability?pop=addrs&ref=12&n=3&window=7", &got)
					if resp.StatusCode != 200 {
						t.Errorf("client %d: stability status %d", c, resp.StatusCode)
						return
					}
					gotSplit := [3]int{got.Active, got.Stable, got.NotStable}
					wantA := [3]int{stabA.Active, stabA.Stable, stabA.NotStable}
					wantB := [3]int{stabB.Active, stabB.Stable, stabB.NotStable}
					if gotSplit != wantA && gotSplit != wantB {
						t.Errorf("client %d: stability %v matches neither generation %v / %v", c, gotSplit, wantA, wantB)
						return
					}
				case 1:
					var got summaryResponse
					resp := get(t, ts, "/v1/summary?day=15", &got)
					if resp.StatusCode != 200 {
						t.Errorf("client %d: summary status %d", c, resp.StatusCode)
						return
					}
					if got.Total != sumA.Total && got.Total != sumB.Total {
						t.Errorf("client %d: summary total %d matches neither %d / %d", c, got.Total, sumA.Total, sumB.Total)
						return
					}
				}
			}
		}(c)
	}

	// Stop the reloader once every client has finished; clientsDone counts
	// only the client goroutines (the reloader exits via stop).
	clientsDone.Wait()
	close(stop)
	wg.Wait()
}

// TestReloadKeepsDefaultAndRejectsUnknown covers the registry semantics:
// reloading a secondary snapshot must not steal the default, and a typoed
// name must never quietly install a new snapshot.
func TestReloadKeepsDefaultAndRejectsUnknown(t *testing.T) {
	pathA := writeSnapshot(t, buildCensus(t, 5, 9), "a.state")
	pathB := writeSnapshot(t, buildCensus(t, 5, 19), "b.state")
	s := New(Options{AdminToken: "secret"})
	if _, err := s.LoadFile("secondary", pathA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadFile("primary", pathB); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot("").Name != "primary" {
		t.Fatalf("default should be the most recently installed, got %q", s.Snapshot("").Name)
	}
	if _, err := s.Reload("secondary", ""); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot("").Name != "primary" {
		t.Errorf("reloading a secondary stole the default: %q", s.Snapshot("").Name)
	}
	// A fresh generation of the default itself stays the default.
	if _, err := s.Reload("primary", ""); err != nil {
		t.Fatal(err)
	}
	if d := s.Snapshot(""); d.Name != "primary" || d.Epoch <= 2 {
		t.Errorf("default after self-reload: %q epoch %d", d.Name, d.Epoch)
	}

	// Unknown name + explicit path must error, not install "liev".
	if _, err := s.Reload("liev", pathA); err == nil {
		t.Fatal("reload of an unknown name should fail")
	}
	if s.Snapshot("liev") != nil {
		t.Error("failed reload installed a snapshot under the typoed name")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post := func(path, token string) int {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/reload?snap=liev&path="+pathA, "secret"); code != 400 {
		t.Errorf("HTTP reload of unknown name: status %d, want 400", code)
	}
	// With a token configured, every reload requires it — via the
	// Authorization header only, never the URL.
	if code := post("/v1/reload?snap=primary&path="+pathA, ""); code != 403 {
		t.Errorf("unauthenticated path reload: status %d, want 403", code)
	}
	if code := post("/v1/reload?snap=primary&path="+pathA, "wrong"); code != 403 {
		t.Errorf("wrong-token path reload: status %d, want 403", code)
	}
	if code := post("/v1/reload?snap=primary&token=secret", ""); code != 403 {
		t.Errorf("URL token must not authorize: status %d, want 403", code)
	}
	if code := post("/v1/reload?snap=primary", ""); code != 403 {
		t.Errorf("tokenless source reload with token configured: status %d, want 403", code)
	}
	if code := post("/v1/reload?snap=primary", "secret"); code != 200 {
		t.Errorf("authorized source reload: status %d, want 200", code)
	}
	if code := post("/v1/reload?snap=primary&path="+pathA, "secret"); code != 200 {
		t.Errorf("authorized path reload: status %d, want 200", code)
	}
	// A generated snapshot (no file source) cannot be source-reloaded.
	s.Install("gen", "", v6class.FromAnalyzer(buildCensus(t, 5, 6)))
	if code := post("/v1/reload?snap=gen", "secret"); code != 400 {
		t.Errorf("source reload of a generated snapshot: status %d, want 400", code)
	}
}

// TestReloadPathNeedsTokenConfigured asserts explicit-path reloads are
// refused outright when the server has no admin token.
func TestReloadPathNeedsTokenConfigured(t *testing.T) {
	path := writeSnapshot(t, buildCensus(t, 5, 9), "a.state")
	s := New(Options{})
	if _, err := s.LoadFile("live", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/reload?snap=live&path="+path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("path reload without configured token: status %d, want 403", resp.StatusCode)
	}
	// Source-only reload stays available.
	resp, err = ts.Client().Post(ts.URL+"/v1/reload?snap=live", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("source-only reload: status %d, want 200", resp.StatusCode)
	}
}

// TestReloadFailureKeepsServing asserts a bad reload leaves the current
// generation untouched.
func TestReloadFailureKeepsServing(t *testing.T) {
	direct := buildCensus(t, 5, 12)
	path := writeSnapshot(t, direct, "a.state")
	s := New(Options{AdminToken: "secret"})
	if _, err := s.LoadFile("live", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := get(t, ts, "/v1/meta", nil).Header.Get("X-V6-Epoch")
	req, err := http.NewRequest("POST", ts.URL+"/v1/reload?snap=live&path=/does/not/exist", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer secret")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad reload status %d, want 400", resp.StatusCode)
	}
	after := get(t, ts, "/v1/meta", nil)
	if after.StatusCode != 200 || after.Header.Get("X-V6-Epoch") != before {
		t.Errorf("failed reload changed the serving generation (%s -> %s)", before, after.Header.Get("X-V6-Epoch"))
	}
}

// TestExperimentsEndpoint runs one driver per-request through the server
// and compares with a direct RunDriver call.
func TestExperimentsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration in -short mode")
	}
	lab := experiments.NewLab(synthTestConfig())
	s := New(Options{Lab: lab})
	s.Install("demo", "demo", v6class.FromAnalyzer(buildCensus(t, 5, 12)))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var list struct {
		Experiments []string `json:"experiments"`
	}
	get(t, ts, "/v1/experiments", &list)
	if len(list.Experiments) == 0 {
		t.Fatal("no experiments listed")
	}

	var got experimentResponse
	resp := get(t, ts, "/v1/experiments/table1", &got)
	if resp.StatusCode != 200 {
		t.Fatalf("experiment status %d", resp.StatusCode)
	}
	want, err := experiments.RunDriver(lab, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Errorf("served experiment output differs from direct run:\n%s\nvs\n%s", got.Output, want.Output)
	}

	if resp := get(t, ts, "/v1/experiments/bogus", nil); resp.StatusCode != 404 {
		t.Errorf("unknown experiment status %d, want 404", resp.StatusCode)
	}
}

// TestInstallFreezesUnfrozenEngine asserts installing an engine the caller
// forgot to freeze yields a queryable snapshot, not per-request panics.
func TestInstallFreezesUnfrozenEngine(t *testing.T) {
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01, StudyDays: 30})
	eng, err := v6class.New(v6class.WithStudyDays(30))
	if err != nil {
		t.Fatal(err)
	}
	for d := 5; d <= 12; d++ {
		if err := eng.AddDay(w.Day(d)); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Options{})
	s.Install("raw", "", eng) // no Freeze: Install must supply it
	if !eng.Frozen() {
		t.Fatal("Install left the engine unfrozen")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var got stabilityResponse
	if resp := get(t, ts, "/v1/stability?pop=addrs&ref=8&n=3", &got); resp.StatusCode != 200 {
		t.Fatalf("query on freshly installed snapshot: status %d", resp.StatusCode)
	}
	if got.Active == 0 {
		t.Error("installed snapshot answered with an empty census")
	}
}

// TestExperimentsDisabled asserts the endpoints 404 without a lab.
func TestExperimentsDisabled(t *testing.T) {
	s := New(Options{})
	s.Install("a", "test", v6class.FromAnalyzer(buildCensus(t, 5, 6)))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp := get(t, ts, "/v1/experiments", nil); resp.StatusCode != 404 {
		t.Errorf("experiments without lab: status %d, want 404", resp.StatusCode)
	}
}

func synthTestConfig() synth.Config {
	return synth.Config{Seed: 7, Scale: 0.002}
}
