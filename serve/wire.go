package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"v6class"
)

// The versioned error envelope. Every non-2xx response of the /v1 API is
//
//	{"error": {"code": "...", "message": "...", "snapshot": "...", "epoch": N}}
//
// where code is one of the stable machine codes below, message is
// human-readable prose that may change freely, and snapshot/epoch name the
// generation that answered (present whenever a snapshot was resolved, so a
// client that hits cursor_expired can see which generation replaced its
// cursor's). Clients dispatch on code, never on message text; the remote
// engine maps codes back to the façade's typed sentinel errors so
// errors.Is works identically against a local and a remote engine.
const (
	// CodeBadParam: a malformed or out-of-range request parameter
	// (HTTP 400). Maps to v6class.ErrConfig.
	CodeBadParam = "bad_param"
	// CodeUnknownSnapshot: the requested snapshot name is not installed
	// (HTTP 404). Maps to ErrUnknownSnapshot.
	CodeUnknownSnapshot = "unknown_snapshot"
	// CodeNotFound: some other named resource (an experiment, a live
	// ingestion session) does not exist (HTTP 404).
	CodeNotFound = "not_found"
	// CodeDayRange: a day outside the snapshot's study period
	// (HTTP 400). Maps to v6class.ErrDayRange.
	CodeDayRange = "day_range"
	// CodeNotFrozen: the engine cannot answer queries yet (HTTP 409).
	// Maps to v6class.ErrNotFrozen.
	CodeNotFrozen = "not_frozen"
	// CodeFrozen: an ingestion request against a frozen engine
	// (HTTP 409). Maps to v6class.ErrFrozen.
	CodeFrozen = "frozen"
	// CodeCursorExpired: the enumeration cursor was minted on a snapshot
	// generation that has since been replaced (HTTP 410). The enumeration
	// must be restarted from the beginning; resuming would mix keys of
	// two different censuses. Maps to ErrCursorExpired.
	CodeCursorExpired = "cursor_expired"
	// CodeConflict: the request contradicts live ingestion state, e.g.
	// freezing a session whose base snapshot was reloaded meanwhile
	// (HTTP 409). Maps to ErrConflict.
	CodeConflict = "conflict"
	// CodeUnauthorized: a write endpoint refused the request (read-only
	// server or missing/wrong admin token, HTTP 403). Maps to
	// ErrUnauthorized.
	CodeUnauthorized = "unauthorized"
	// CodeOverloaded: the server shed the request because the sweep
	// concurrency limit is saturated (HTTP 429). The response carries a
	// Retry-After hint; the remote client's backoff honors it and retries
	// automatically. Maps to ErrOverloaded.
	CodeOverloaded = "overloaded"
	// CodeUnavailable: the snapshot is a cluster coordinator and could not
	// reach its backends (HTTP 503, with a Retry-After hint). Maps to
	// v6class.ErrUnavailable.
	CodeUnavailable = "unavailable"
	// CodeInternal: an unexpected server-side failure (HTTP 5xx).
	CodeInternal = "internal"
)

// Typed sentinels for the serve-level failure modes that have no façade
// counterpart. WireError.Unwrap surfaces them, so clients test with
// errors.Is exactly as they would for engine errors.
var (
	// ErrCursorExpired reports that a paged enumeration's generation was
	// replaced mid-stream; restart the enumeration.
	ErrCursorExpired = errors.New("serve: cursor expired (snapshot reloaded during enumeration)")
	// ErrUnknownSnapshot reports a request against a snapshot name that
	// is not installed.
	ErrUnknownSnapshot = errors.New("serve: unknown snapshot")
	// ErrConflict reports a write that contradicts live ingestion state.
	ErrConflict = errors.New("serve: conflicting live state")
	// ErrUnauthorized reports a refused write (read-only server or bad
	// admin token).
	ErrUnauthorized = errors.New("serve: unauthorized")
	// ErrOverloaded reports a request shed by the sweep concurrency limit;
	// retry after the Retry-After hint.
	ErrOverloaded = errors.New("serve: overloaded (sweep concurrency limit saturated)")
)

// WireError is the decoded form of one error envelope. The serve handlers
// produce it and remote clients reconstruct it from response bodies, so a
// coordinator relaying a backend failure preserves the code end to end.
type WireError struct {
	// Code is one of the Code* machine codes.
	Code string `json:"code"`
	// Message is human-readable detail; not a compatibility surface.
	Message string `json:"message"`
	// Snapshot and Epoch identify the generation that answered, when one
	// was resolved.
	Snapshot string `json:"snapshot,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	// Status is the HTTP status the envelope traveled with; zero on the
	// server side (the status is the response's, not the body's).
	Status int `json:"-"`
}

func (e *WireError) Error() string {
	return fmt.Sprintf("serve: %s (%s)", e.Message, e.Code)
}

// Unwrap maps the machine code to its typed sentinel, making errors.Is
// against façade and serve sentinels work on both sides of the wire.
func (e *WireError) Unwrap() error {
	switch e.Code {
	case CodeBadParam:
		return v6class.ErrConfig
	case CodeDayRange:
		return v6class.ErrDayRange
	case CodeNotFrozen:
		return v6class.ErrNotFrozen
	case CodeFrozen:
		return v6class.ErrFrozen
	case CodeCursorExpired:
		return ErrCursorExpired
	case CodeUnknownSnapshot:
		return ErrUnknownSnapshot
	case CodeConflict:
		return ErrConflict
	case CodeUnauthorized:
		return ErrUnauthorized
	case CodeOverloaded:
		return ErrOverloaded
	case CodeUnavailable:
		return v6class.ErrUnavailable
	}
	return nil
}

type errEnvelope struct {
	Error *WireError `json:"error"`
}

// DecodeError reconstructs the *WireError of a non-2xx response body. A
// body that is not an envelope (a proxy error page, a truncated response)
// decodes to a CodeInternal WireError carrying the status, so callers
// always get the same shape.
func DecodeError(status int, body []byte) *WireError {
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.Status = status
		return env.Error
	}
	msg := string(body)
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return &WireError{Code: CodeInternal, Message: fmt.Sprintf("HTTP %d: %s", status, msg), Status: status}
}

// writeErr answers with the error envelope. snap stamps the generation
// into the envelope and may be nil when the failure precedes snapshot
// resolution.
func writeErr(w http.ResponseWriter, status int, code string, snap *Snapshot, format string, args ...any) {
	we := &WireError{Code: code, Message: fmt.Sprintf(format, args...)}
	if snap != nil {
		we.Snapshot, we.Epoch = snap.Name, snap.Epoch
	}
	writeJSON(w, status, errEnvelope{Error: we})
}

// codeOfEngineErr maps a façade error from a write-path engine call to its
// wire code; parameter-shaped failures default to bad_param.
func codeOfEngineErr(err error) (int, string) {
	switch {
	case errors.Is(err, v6class.ErrDayRange):
		return http.StatusBadRequest, CodeDayRange
	case errors.Is(err, v6class.ErrFrozen):
		return http.StatusConflict, CodeFrozen
	case errors.Is(err, v6class.ErrNotFrozen):
		return http.StatusConflict, CodeNotFrozen
	}
	return http.StatusBadRequest, CodeBadParam
}
