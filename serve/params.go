package serve

import (
	"encoding/base64"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"v6class"
)

// The wire parameter vocabulary: one encoder/decoder pair per query-string
// field, shared verbatim by the request handlers and the remote engine
// client (package remote), so the wire format is defined exactly once and
// can be round-trip tested. Handlers decode from r.URL.Query(); the client
// encodes into the url.Values it requests with. Every decoder treats an
// absent field as its documented default and reports malformed values as
// plain errors, which handlers answer with the bad_param envelope code.

// DecodeInt parses an optional integer field, returning def when absent.
func DecodeInt(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %v", name, err)
	}
	return n, nil
}

// DecodeFloat parses an optional float field, returning def when absent.
func DecodeFloat(q url.Values, name string, def float64) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %v", name, err)
	}
	return f, nil
}

// RequireInt parses a mandatory integer field.
func RequireInt(q url.Values, name string) (int, error) {
	if q.Get(name) == "" {
		return 0, fmt.Errorf("missing required parameter %s", name)
	}
	return DecodeInt(q, name, 0)
}

// PopName returns the canonical wire name of a population: "addrs" or
// "64s". These names appear in cursors, cache keys and response echoes.
func PopName(pop v6class.Population) string {
	if pop == v6class.Prefixes64 {
		return "64s"
	}
	return "addrs"
}

// EncodePop sets the pop field to a population's canonical name.
func EncodePop(v url.Values, pop v6class.Population) {
	v.Set("pop", PopName(pop))
}

// DecodePop parses the population selector: addresses by default, /64
// prefixes for pop=64s. The returned name is the canonical spelling.
func DecodePop(q url.Values) (v6class.Population, string, error) {
	switch v := q.Get("pop"); v {
	case "", "addrs", "addresses":
		return v6class.Addresses, "addrs", nil
	case "64s", "p64", "prefixes64":
		return v6class.Prefixes64, "64s", nil
	default:
		return 0, "", fmt.Errorf("parameter pop: unknown population %q (want addrs or 64s)", v)
	}
}

// EncodeDays sets the canonical day selection (days=N,M,... normalized) —
// the spelling every decoder normalizes to, so client-encoded requests hit
// the same cache keys as any equivalent hand-written spelling.
func EncodeDays(v url.Values, days []int) {
	if len(days) == 0 {
		return
	}
	v.Set("days", daysKey(days))
}

// DecodeDays parses a required day selection: day=N, an explicit comma
// list days=N,M,..., or an inclusive from=N&to=N range. The selection
// comes back normalized (sorted, deduplicated), the canonical form used
// for cache keys and response echoes alike.
func DecodeDays(q url.Values) ([]int, error) {
	days, err := DecodeDaysOptional(q)
	if err != nil {
		return nil, err
	}
	if days == nil {
		return nil, fmt.Errorf("missing day selection: give day=N, days=N,M,... or from=N&to=N")
	}
	return days, nil
}

// DecodeDaysOptional is DecodeDays for endpoints where the day selection
// may be omitted entirely (e.g. /v1/keys, where no selection means every
// key ever observed): it returns nil, nil when no day field is present.
func DecodeDaysOptional(q url.Values) ([]int, error) {
	if q.Get("day") != "" {
		d, err := RequireInt(q, "day")
		if err != nil {
			return nil, err
		}
		return []int{d}, nil
	}
	if list := q.Get("days"); list != "" {
		parts := strings.Split(list, ",")
		if len(parts) > maxDayRange {
			return nil, fmt.Errorf("parameter days: at most %d days", maxDayRange)
		}
		days := make([]int, 0, len(parts))
		for _, p := range parts {
			d, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("parameter days: bad day %q", p)
			}
			days = append(days, d)
		}
		return normalizeDays(days), nil
	}
	if q.Get("from") == "" && q.Get("to") == "" {
		return nil, nil
	}
	if q.Get("from") == "" || q.Get("to") == "" {
		return nil, fmt.Errorf("day ranges need both from= and to=")
	}
	from, err := RequireInt(q, "from")
	if err != nil {
		return nil, err
	}
	to, err := RequireInt(q, "to")
	if err != nil {
		return nil, err
	}
	if to < from || to-from+1 > maxDayRange {
		return nil, fmt.Errorf("bad day range [%d,%d] (want from <= to, at most %d days)", from, to, maxDayRange)
	}
	days := make([]int, 0, to-from+1)
	for d := from; d <= to; d++ {
		days = append(days, d)
	}
	return days, nil
}

// EncodeWindow sets the stability-option fields: window=N for a symmetric
// (-Nd,+Nd) window (omitted when the paper default ±7d), wbefore=/wafter=
// for an asymmetric one, slew=N and anypair=true when set. The encoding is
// what DecodeWindow parses, so a remote StabilityWith call reproduces the
// server-side options exactly.
func EncodeWindow(v url.Values, opts v6class.StabilityOptions) {
	w := opts.Window
	if w == (v6class.StabilityWindow{}) {
		w = v6class.StabilityWindow{Before: 7, After: 7}
	}
	if w.Before == w.After {
		v.Set("window", strconv.Itoa(w.Before))
	} else {
		v.Set("wbefore", strconv.Itoa(w.Before))
		v.Set("wafter", strconv.Itoa(w.After))
	}
	if opts.SlewDays != 0 {
		v.Set("slew", strconv.Itoa(opts.SlewDays))
	}
	if opts.AnyPair {
		v.Set("anypair", "true")
	}
}

// DecodeWindow parses the stability options: window=N (the paper-style
// symmetric window, default 7), optionally overridden by an asymmetric
// wbefore=/wafter= pair, plus slew=N and anypair=true. The int result is
// the symmetric window for response echoes (0 when asymmetric).
func DecodeWindow(q url.Values) (v6class.StabilityOptions, int, error) {
	window, err := DecodeInt(q, "window", 7)
	if err != nil || window <= 0 {
		return v6class.StabilityOptions{}, 0, fmt.Errorf("parameter window: want a positive day count")
	}
	opts := v6class.StabilityOptions{Window: v6class.StabilityWindow{Before: window, After: window}}
	if q.Get("wbefore") != "" || q.Get("wafter") != "" {
		before, err := RequireInt(q, "wbefore")
		if err != nil {
			return opts, 0, err
		}
		after, err := RequireInt(q, "wafter")
		if err != nil {
			return opts, 0, err
		}
		if before < 0 || after < 0 {
			return opts, 0, fmt.Errorf("parameters wbefore/wafter: want non-negative day counts")
		}
		opts.Window = v6class.StabilityWindow{Before: before, After: after}
		window = 0
		if before == after {
			window = before
		}
	}
	slew, err := DecodeInt(q, "slew", 0)
	if err != nil || slew < 0 {
		return opts, 0, fmt.Errorf("parameter slew: want a non-negative day count")
	}
	opts.SlewDays = slew
	opts.AnyPair = q.Get("anypair") == "true"
	return opts, window, nil
}

// windowKey canonicalizes stability options for cache keys: the sorted
// url encoding of EncodeWindow's fields.
func windowKey(opts v6class.StabilityOptions) string {
	v := url.Values{}
	EncodeWindow(v, opts)
	return v.Encode()
}

// DecodeLimit parses the page-size field of the paged enumerations,
// clamped to [1, max]; absent means def.
func DecodeLimit(q url.Values, def, max int) (int, error) {
	limit, err := DecodeInt(q, "limit", def)
	if err != nil || limit <= 0 {
		return 0, fmt.Errorf("parameter limit: want a positive count")
	}
	if limit > max {
		limit = max
	}
	return limit, nil
}

// Cursor is the resumable position of a paged enumeration. A cursor pins
// the exact snapshot generation it was minted on: Snapshot and Epoch name
// the generation, Query the canonical query it belongs to (so a cursor
// cannot be replayed against different parameters), and Pos the
// endpoint-defined position — the last key yielded for the key-ordered
// enumerations, an integer offset for the ranked ones.
//
// Cursors are opaque to clients: base64url text whose layout may change
// between server versions. A cursor outlives its generation when the
// snapshot is reloaded mid-enumeration; the server then fails closed with
// the cursor_expired envelope code (HTTP 410) rather than silently mixing
// keys of two different censuses in one enumeration.
type Cursor struct {
	Snapshot string
	Epoch    uint64
	Query    string
	Pos      string
}

// cursorVersion guards the cursor layout; a decoder refuses other
// versions so layout changes surface as bad_param, not misparses.
const cursorVersion = "v1"

// Encode serializes the cursor to its opaque wire form.
func (c Cursor) Encode() string {
	fields := []string{
		cursorVersion,
		url.QueryEscape(c.Snapshot),
		strconv.FormatUint(c.Epoch, 10),
		url.QueryEscape(c.Query),
		url.QueryEscape(c.Pos),
	}
	return base64.RawURLEncoding.EncodeToString([]byte(strings.Join(fields, "|")))
}

// DecodeCursor parses an opaque cursor. Errors mean a malformed or
// foreign-version cursor (bad_param), never an expired one — expiry is a
// comparison against the serving generation, made by the handler.
func DecodeCursor(s string) (Cursor, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Cursor{}, fmt.Errorf("parameter cursor: %v", err)
	}
	fields := strings.Split(string(raw), "|")
	if len(fields) != 5 || fields[0] != cursorVersion {
		return Cursor{}, fmt.Errorf("parameter cursor: malformed or unsupported cursor")
	}
	snap, err1 := url.QueryUnescape(fields[1])
	epoch, err2 := strconv.ParseUint(fields[2], 10, 64)
	query, err3 := url.QueryUnescape(fields[3])
	pos, err4 := url.QueryUnescape(fields[4])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return Cursor{}, fmt.Errorf("parameter cursor: malformed cursor")
	}
	return Cursor{Snapshot: snap, Epoch: epoch, Query: query, Pos: pos}, nil
}
