package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"v6class"
	"v6class/experiments"
)

// Snapshot is one frozen census being served: an immutable analysis engine
// plus the metadata a client needs to reason about what it is querying.
// Every field is written once, before the snapshot is published; after
// publication a Snapshot is read-only and may be shared by any number of
// in-flight requests.
type Snapshot struct {
	// Name is the registry key clients select with ?snap=.
	Name string
	// Source is the file the snapshot was loaded from; Reload re-reads
	// it. Generated snapshots (Install with an empty source) have no
	// file and cannot be source-reloaded.
	Source string
	// Epoch is the server-unique, monotonically increasing load
	// generation. It keys the result cache and lets clients detect swaps.
	Epoch uint64
	// LoadedAt is when this generation was installed.
	LoadedAt time.Time
	// Engine is the frozen façade engine answering every query.
	Engine v6class.Engine
	// Format is the snapshot file's format version (1 or 2) for
	// file-loaded snapshots, 0 for generated (Install-ed) ones.
	Format int
	// SizeBytes is the snapshot file's on-disk size, 0 when generated.
	SizeBytes int64

	// sets memoizes the spatial populations built from this generation's
	// engine, keyed by population and day selection, so dense, top-k and
	// future MRA queries over the same days share one parallel trie build
	// instead of one build per query shape. results memoizes the derived
	// limit-free response structs, so a render-key miss re-marshals a
	// truncated copy without recomputing or decoding JSON. Both are
	// internal caches, concurrent-safe, and die with the generation.
	sets    memo[*v6class.AddressSet]
	results memo[any]
}

// Bounds for the per-snapshot memos: populations are large (a trie over
// every active address of the selected days), so only a few day selections
// stay resident; derived response structs are small.
const (
	maxSetEntries    = 4
	maxResultEntries = 256
)

// addressSet returns this generation's spatial population for (pop, days),
// built at most once per snapshot however many query shapes (dense sweep
// parameters, top-k aggregate lengths) read it.
func (snap *Snapshot) addressSet(pop v6class.Population, popName string, days []int) *v6class.AddressSet {
	key := popName + "|" + daysKey(days)
	return snap.sets.do(maxSetEntries, key, func() *v6class.AddressSet {
		return strict(snap.Engine.SpatialSet(pop, days...))
	})
}

// snapTable is the immutable snapshot registry generation: readers load it
// with one atomic pointer read; writers build a new table and swap it in.
type snapTable struct {
	byName map[string]*Snapshot
	names  []string  // sorted, for stable listings
	def    *Snapshot // most recently installed; serves unqualified queries
}

// Options configures a Server.
type Options struct {
	// CacheEntries bounds the result cache; 0 means the default (4096).
	CacheEntries int
	// Lab, when non-nil, enables the /v1/experiments endpoints: every
	// registered experiment driver becomes callable per-request (with
	// cached results) against this lab.
	Lab *experiments.Lab
	// AdminToken, when non-empty, is required (Authorization: Bearer
	// TOKEN) for every /v1/reload, /v1/ingest and /v1/freeze. Without a
	// token configured, reloads may only re-read a snapshot's recorded
	// source — a client can refresh data but never point the server at an
	// arbitrary server-side file — and the write endpoints are open (the
	// dev/demo posture; see ReadOnly).
	AdminToken string
	// ReadOnly disables the write path entirely: /v1/ingest and
	// /v1/freeze answer 403 regardless of token. Reload stays available
	// (it re-reads files the server already trusts).
	ReadOnly bool
	// AccessLog, when non-nil, receives one structured line per completed
	// request: time, method, path, the snapshot name and epoch that
	// answered, status, duration and body bytes. Writes are serialized;
	// the writer needs no locking of its own. Typically an *os.File (see
	// cmd/v6served's -access-log flag).
	AccessLog io.Writer
	// Catalog lists historical snapshot files with the date ranges they
	// cover; the /v1/at endpoints resolve a calendar date to its covering
	// snapshot, loading it on first use and keeping at most
	// CatalogResident resident (see catalog.go). Entries are independent
	// of the ?snap= registry: they never become the default snapshot.
	Catalog []CatalogEntry
	// CatalogResident bounds how many catalog snapshots stay loaded at
	// once; least-recently-used entries are released past it. 0 means the
	// default (4).
	CatalogResident int
	// SweepConcurrency bounds how many expensive sweep requests —
	// /v1/keys, /v1/stable, /v1/lifetimes, /v1/mra, /v1/aguri, the
	// endpoints that walk or build whole populations — run at once.
	// Excess requests are shed immediately with HTTP 429 (code
	// "overloaded") and a Retry-After hint rather than queued, so load
	// pushes back on clients instead of piling goroutines; the remote
	// client's backoff turns the hint into a delayed retry. 0 means the
	// default (16); negative disables the limit.
	SweepConcurrency int
}

// defaultSweepConcurrency is the sweep admission limit when Options leaves
// SweepConcurrency zero.
const defaultSweepConcurrency = 16

// Server is a concurrent read-only query service over frozen census
// snapshots. Construct with New, install at least one snapshot with
// LoadFile or Install, and serve Handler.
//
// Concurrency model: the snapshot registry is an atomic pointer to an
// immutable table (RCU). A request resolves its *Snapshot once, at
// dispatch, and uses that engine for its whole lifetime; Reload builds a
// new table around a freshly loaded engine and swaps the pointer, so
// in-flight requests keep their generation and never observe a partial
// swap. Old generations are garbage-collected when the last request
// holding them returns.
type Server struct {
	mu         sync.Mutex // serializes installs/reloads (readers never take it)
	snaps      atomic.Pointer[snapTable]
	nextEpoch  atomic.Uint64
	cache      *Cache
	lab        *experiments.Lab
	adminToken string
	readOnly   bool
	accessLog  io.Writer
	started    time.Time
	sweepSem   chan struct{} // sweep admission semaphore; nil = unlimited

	// The time-travel catalog (catalog.go): historical snapshots resolved
	// by calendar date, loaded lazily and kept resident under an LRU
	// budget. mux is the route table /v1/at re-dispatches through.
	catalog *catalog
	muxOnce sync.Once
	mux     *http.ServeMux

	// The live write path (ingest.go): at most one ingesting successor
	// generation per snapshot name, created lazily by /v1/ingest and
	// consumed (installed or discarded) by /v1/freeze. liveMu guards the
	// map and serializes freezes; per-session ingest serializes on the
	// session's own lock.
	liveMu sync.Mutex
	lives  map[string]*liveSession
}

// New returns an empty Server; install a snapshot before serving.
func New(opts Options) *Server {
	s := &Server{
		cache:      newCache(opts.CacheEntries),
		lab:        opts.Lab,
		adminToken: opts.AdminToken,
		readOnly:   opts.ReadOnly,
		accessLog:  opts.AccessLog,
		started:    time.Now(),
		lives:      map[string]*liveSession{},
	}
	limit := opts.SweepConcurrency
	if limit == 0 {
		limit = defaultSweepConcurrency
	}
	if limit > 0 {
		s.sweepSem = make(chan struct{}, limit)
	}
	s.catalog = newCatalog(s, opts.Catalog, opts.CatalogResident)
	s.snaps.Store(&snapTable{byName: map[string]*Snapshot{}})
	return s
}

// LoadFile reads a census snapshot file (written by Engine.Save or any
// WriteTo — the format is engine-agnostic), freezes it, installs it under
// name and returns the installed generation. Loading the same name again
// atomically replaces the prior generation without disturbing in-flight
// requests.
func (s *Server) LoadFile(name, path string) (*Snapshot, error) {
	info, err := v6class.SniffSnapshot(path)
	if err != nil {
		return nil, fmt.Errorf("serve: loading snapshot %q: %w", name, err)
	}
	eng, err := v6class.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: loading snapshot %q: %w", name, err)
	}
	if err := eng.Freeze(); err != nil {
		return nil, fmt.Errorf("serve: freezing snapshot %q: %w", name, err)
	}
	return s.install(name, path, eng, nil, info.Version, info.Size), nil
}

// Install publishes an already built engine under name (use
// v6class.FromAnalyzer to adopt an internally built census). An engine
// still ingesting is frozen here — every query on an installed snapshot
// must be valid, so an unfrozen install must not be representable; the
// caller's ingesting goroutines must have returned.
func (s *Server) Install(name, source string, eng v6class.Engine) *Snapshot {
	return s.install(name, source, eng, nil, 0, 0)
}

// install is Install with optional spatial-memo seeds — populations derived
// incrementally from the predecessor generation (the freeze path) are
// planted before the snapshot is published, so the new generation's first
// dense/topk queries reuse them instead of rebuilding from scratch — and
// the file metadata (format version, byte size) of file-loaded snapshots.
func (s *Server) install(name, source string, eng v6class.Engine, seeds map[string]*v6class.AddressSet, format int, sizeBytes int64) *Snapshot {
	if err := eng.Freeze(); err != nil {
		// Freeze is idempotent and cannot fail today; a future error here
		// means the snapshot would panic on every request, so refuse loudly
		// at install time instead.
		panic(fmt.Sprintf("serve: installing snapshot %q: %v", name, err))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The epoch is allocated inside the install lock so published
	// generations are strictly monotonic even under concurrent reloads.
	snap := &Snapshot{
		Name:      name,
		Source:    source,
		Epoch:     s.nextEpoch.Add(1),
		LoadedAt:  time.Now(),
		Engine:    eng,
		Format:    format,
		SizeBytes: sizeBytes,
	}
	for key, set := range seeds {
		snap.sets.seed(maxSetEntries, key, set)
	}
	old := s.snaps.Load()
	next := &snapTable{byName: make(map[string]*Snapshot, len(old.byName)+1), def: snap}
	for n, sn := range old.byName {
		next.byName[n] = sn
	}
	// Replacing an already installed non-default snapshot keeps the
	// current default: a reload of a secondary must not flip which
	// dataset serves unqualified queries. A genuinely new name (or a new
	// generation of the default itself) becomes the default.
	if existing, ok := old.byName[name]; ok && old.def != nil && old.def != existing {
		next.def = old.def
	}
	next.byName[name] = snap
	next.names = make([]string, 0, len(next.byName))
	for n := range next.byName {
		next.names = append(next.names, n)
	}
	sort.Strings(next.names)
	s.snaps.Store(next)
	return snap
}

// Reload re-reads the named snapshot from the given path (or, when path is
// empty, from the snapshot's recorded source) and swaps the new generation
// in. Only installed snapshots can be reloaded — an unknown name is an
// error, never a quiet install under a typo. On any error the current
// generation keeps serving.
func (s *Server) Reload(name, path string) (*Snapshot, error) {
	t := s.snaps.Load()
	snap := t.byName[name]
	if name == "" {
		snap = t.def
	}
	if snap == nil {
		return nil, fmt.Errorf("serve: no snapshot %q to reload", name)
	}
	if path == "" {
		if snap.Source == "" {
			return nil, fmt.Errorf("serve: snapshot %q is generated and has no file source to reload", snap.Name)
		}
		path = snap.Source
	}
	// Return the generation this call installed, straight from LoadFile: a
	// re-resolution by name here could report a different generation when
	// reloads race, and a caller acting on the result (logging the epoch,
	// priming caches) must see its own install.
	return s.LoadFile(snap.Name, path)
}

// Snapshot resolves a snapshot by name; the empty name selects the
// default (most recently installed). It returns nil when absent.
func (s *Server) Snapshot(name string) *Snapshot {
	t := s.snaps.Load()
	if name == "" {
		return t.def
	}
	return t.byName[name]
}

// Names returns the sorted installed snapshot names.
func (s *Server) Names() []string {
	return s.snaps.Load().names
}

// Handler returns the HTTP API; see doc.go for the endpoint reference. The
// route table is built once and reused by subsequent calls (the /v1/at
// time-travel endpoint re-dispatches requests through it).
func (s *Server) Handler() http.Handler {
	s.muxOnce.Do(s.buildMux)
	if s.accessLog != nil {
		return &accessLogger{w: s.accessLog, next: s.mux}
	}
	return s.mux
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/meta", s.snapshotHandler(s.handleMeta))
	mux.HandleFunc("GET /v1/summary", s.snapshotHandler(s.handleSummary))
	mux.HandleFunc("GET /v1/stability", s.snapshotHandler(s.handleStability))
	mux.HandleFunc("GET /v1/lookup", s.snapshotHandler(s.handleLookup))
	mux.HandleFunc("GET /v1/dense", s.snapshotHandler(s.handleDense))
	mux.HandleFunc("GET /v1/topk", s.snapshotHandler(s.handleTopK))
	mux.HandleFunc("GET /v1/overlap", s.snapshotHandler(s.handleOverlap))
	mux.HandleFunc("GET /v1/keys", s.snapshotHandler(s.limited(s.handleKeys)))
	mux.HandleFunc("GET /v1/lifetimes", s.snapshotHandler(s.limited(s.handleLifetimes)))
	mux.HandleFunc("GET /v1/lifetimes/stats", s.snapshotHandler(s.handleLifetimeStats))
	mux.HandleFunc("GET /v1/stable", s.snapshotHandler(s.limited(s.handleStable)))
	mux.HandleFunc("GET /v1/active", s.snapshotHandler(s.handleActive))
	mux.HandleFunc("GET /v1/epoch", s.snapshotHandler(s.handleEpochStable))
	mux.HandleFunc("GET /v1/returnprob", s.snapshotHandler(s.handleReturnProb))
	mux.HandleFunc("GET /v1/lsp", s.snapshotHandler(s.handleLSP))
	mux.HandleFunc("GET /v1/mra", s.snapshotHandler(s.limited(s.handleMRA)))
	mux.HandleFunc("GET /v1/aguri", s.snapshotHandler(s.limited(s.handleAguri)))
	mux.HandleFunc("GET /v1/targets", s.snapshotHandler(s.limited(s.handleTargets)))
	mux.HandleFunc("GET /v1/snapshot", s.snapshotHandler(s.handleSnapshotDump))
	mux.HandleFunc("GET /v1/at", s.handleAt)
	mux.HandleFunc("GET /v1/at/{rest...}", s.handleAt)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/freeze", s.handleFreeze)
	s.mux = mux
}
