package serve

import (
	"sync"
	"sync/atomic"
)

// memo is a bounded per-snapshot singleflight cache: the first caller of a
// key runs build while concurrent callers of the same key wait for the one
// result, so an expensive computation (a spatial population build, a
// densify sweep) happens at most once per snapshot generation however many
// clients race on it. When the bound is reached an arbitrary entry is
// evicted; correctness never depends on presence, because every value is a
// pure function of the snapshot's immutable engine. A memo lives inside a
// *Snapshot, so a reload naturally invalidates it: the fresh generation
// starts with an empty memo and the old one is garbage-collected with its
// snapshot.
type memo[V any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
	ok   bool
	// done flips (after v/ok are written) once the build has completed, so
	// each can observe completed entries without joining the singleflight:
	// the atomic store/load pair publishes v to goroutines that never ran
	// or waited on the entry's once.
	done atomic.Bool
}

// do returns the memoized value for key, computing it via build on first
// use. bound caps the entry count (evicting arbitrarily, like the result
// cache); an entry evicted while still being built simply completes for its
// waiters and is dropped. A build that panics is never memoized: the entry
// is forgotten so the panic (surfaced to the panicking request by the HTTP
// server) cannot latch a zero value, and waiters retry with a fresh entry.
func (m *memo[V]) do(bound int, key string, build func() V) V {
	for {
		m.mu.Lock()
		if m.entries == nil {
			m.entries = make(map[string]*memoEntry[V])
		}
		e := m.entries[key]
		if e == nil {
			if len(m.entries) >= bound {
				for k := range m.entries {
					delete(m.entries, k)
					break
				}
			}
			e = &memoEntry[V]{}
			m.entries[key] = e
		}
		m.mu.Unlock()
		e.once.Do(func() {
			defer func() {
				if !e.ok {
					m.forget(key, e)
				}
			}()
			e.v = build()
			e.ok = true
			e.done.Store(true)
		})
		if e.ok {
			// sync.Once publishes e.v/e.ok to every goroutine whose Do has
			// returned.
			return e.v
		}
		// The build panicked — in this goroutine the panic already
		// propagated, so reaching here means another caller's build died
		// after we started waiting. The entry is gone; retry fresh.
	}
}

// forget drops an entry whose build failed, unless a fresh entry has
// already replaced it.
func (m *memo[V]) forget(key string, e *memoEntry[V]) {
	m.mu.Lock()
	if m.entries[key] == e {
		delete(m.entries, key)
	}
	m.mu.Unlock()
}

// seed pre-populates key with an already computed value, as if a do(key)
// build had completed — the warm-start path for a successor snapshot whose
// values were derived incrementally from the predecessor's memo. An
// existing entry wins (a racing build is as correct as the seed); the bound
// is enforced like do's.
func (m *memo[V]) seed(bound int, key string, v V) {
	e := &memoEntry[V]{v: v, ok: true}
	e.once.Do(func() {})
	e.done.Store(true)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = make(map[string]*memoEntry[V])
	}
	if _, exists := m.entries[key]; exists {
		return
	}
	if len(m.entries) >= bound {
		for k := range m.entries {
			delete(m.entries, k)
			break
		}
	}
	m.entries[key] = e
}

// each visits every completed entry (in-flight builds are skipped — their
// values are not yet published). The visit runs outside the memo lock, so
// fn may itself use memos freely.
func (m *memo[V]) each(fn func(key string, v V)) {
	m.mu.Lock()
	type kv struct {
		k string
		e *memoEntry[V]
	}
	all := make([]kv, 0, len(m.entries))
	for k, e := range m.entries {
		all = append(all, kv{k, e})
	}
	m.mu.Unlock()
	for _, it := range all {
		if it.e.done.Load() {
			fn(it.k, it.e.v)
		}
	}
}
