package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"v6class"
)

// The live write path: POST /v1/ingest streams day-log records into an
// unfrozen successor generation of a named snapshot while the current
// frozen generation keeps serving every read, and POST /v1/freeze
// atomically freezes the successor and installs it through the same RCU
// swap as a reload. Readers never observe a partial census: until the
// freeze lands they resolve the old generation, after it they resolve the
// new one, and the install epoch stays monotonic because it is allocated
// inside the install lock like every other generation's.

// maxIngestBody bounds one ingest request's body; day logs beyond it
// arrive as multiple requests against the same live session.
const maxIngestBody = 256 << 20

// liveSession is the at-most-one ingesting successor generation of a named
// snapshot: created lazily by the first /v1/ingest, fed by every
// subsequent one, and consumed — installed or discarded — by /v1/freeze.
// The session lock serializes ingests so concurrent posts append rather
// than race; reads never touch it.
type liveSession struct {
	mu      sync.Mutex
	name    string
	base    *Snapshot          // the generation the successor layers over
	eng     v6class.LiveEngine // ingesting until freeze
	records int
	days    map[int]bool
}

// authWrite gates the write endpoints: a read-only server refuses
// outright, a server with an admin token requires it, and a tokenless
// writable server is open (the dev/demo posture, matching tokenless
// source reloads).
func (s *Server) authWrite(w http.ResponseWriter, r *http.Request) bool {
	if s.readOnly {
		writeErr(w, http.StatusForbidden, CodeUnauthorized, nil, "server is read-only: write endpoints are disabled")
		return false
	}
	if s.adminToken != "" {
		// Header only: a token in the URL would leak into access logs.
		bearer := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !tokenOK(bearer, s.adminToken) {
			writeErr(w, http.StatusForbidden, CodeUnauthorized, nil, "write endpoints require the admin token (Authorization: Bearer)")
			return false
		}
	}
	return true
}

// liveFor returns snap's live session, opening one over the snapshot's
// current engine if none exists. An existing session keeps the base it
// opened on even if the snapshot has since been reloaded; the freeze
// handler is where that conflict surfaces.
func (s *Server) liveFor(snap *Snapshot) (*liveSession, error) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if ls, ok := s.lives[snap.Name]; ok {
		return ls, nil
	}
	eng, err := v6class.Successor(snap.Engine)
	if err != nil {
		return nil, fmt.Errorf("opening ingest session for %q: %v", snap.Name, err)
	}
	ls := &liveSession{name: snap.Name, base: snap, eng: eng, days: map[int]bool{}}
	s.lives[snap.Name] = ls
	return ls, nil
}

type ingestResponse struct {
	Snapshot     string `json:"snapshot"`
	BaseEpoch    uint64 `json:"baseEpoch"`
	Records      int    `json:"records"`
	Days         []int  `json:"days"`
	TotalRecords int    `json:"totalRecords"`
	TotalDays    []int  `json:"totalDays"`
}

// handleIngest appends aggregated day logs (the text format of ReadLogs,
// "#day N" sections) to the named snapshot's live successor generation.
// The frozen base snapshot keeps answering every concurrent read; nothing
// ingested is visible to queries until /v1/freeze installs the successor.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.authWrite(w, r) {
		return
	}
	name := r.URL.Query().Get("snap")
	snap := s.Snapshot(name)
	if snap == nil {
		writeErr(w, http.StatusNotFound, CodeUnknownSnapshot, nil, "no snapshot %q installed", name)
		return
	}
	logs, err := v6class.ParseLogs(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parsing day logs: %v", err)
		return
	}
	ls, err := s.liveFor(snap)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.eng.AddDays(logs); err != nil {
		// Days before the offending one are already absorbed; the session
		// stays usable (re-ingesting a day is idempotent at the census
		// level: observations are sets, not counters).
		status, code := codeOfEngineErr(err)
		writeErr(w, status, code, snap, "ingesting: %v", err)
		return
	}
	recs := 0
	reqDays := map[int]bool{}
	for _, l := range logs {
		recs += len(l.Records)
		reqDays[l.Day] = true
		ls.days[l.Day] = true
	}
	ls.records += recs
	writeJSON(w, http.StatusOK, ingestResponse{
		Snapshot:     ls.name,
		BaseEpoch:    ls.base.Epoch,
		Records:      recs,
		Days:         sortedDays(reqDays),
		TotalRecords: ls.records,
		TotalDays:    sortedDays(ls.days),
	})
}

type freezeResponse struct {
	metaResponse
	BaseEpoch    uint64 `json:"baseEpoch"`
	Records      int    `json:"records"`
	IngestedDays []int  `json:"ingestedDays"`
	SeededSets   int    `json:"seededSets"`
}

// handleFreeze ends the named snapshot's live ingest session: the
// successor engine is frozen and installed as the next generation through
// the same atomic registry swap as a reload, so a reader resolves either
// the complete old census or the complete new one, never a mix. The new
// generation's spatial memo is seeded incrementally — each population the
// base generation had built is extended by the successor's delta (a clone
// plus O(new keys) trie inserts) instead of being rebuilt from scratch on
// the first query.
//
// If the snapshot was reloaded after the session opened, the session's
// base is no longer what clients are reading and installing it would
// silently drop the reloaded generation's data; the freeze answers 409
// unless force=true. discard=true drops the session without installing.
func (s *Server) handleFreeze(w http.ResponseWriter, r *http.Request) {
	if !s.authWrite(w, r) {
		return
	}
	q := r.URL.Query()
	name := q.Get("snap")
	if snap := s.Snapshot(name); snap != nil {
		name = snap.Name // resolve the default snapshot's real name
	}
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	ls := s.lives[name]
	if ls == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, nil, "no live ingest session for snapshot %q", name)
		return
	}
	if q.Get("discard") == "true" {
		delete(s.lives, name)
		writeJSON(w, http.StatusOK, map[string]any{"snapshot": name, "discarded": true, "records": ls.records})
		return
	}
	if cur := s.Snapshot(ls.name); cur != ls.base && q.Get("force") != "true" {
		writeErr(w, http.StatusConflict, CodeConflict, ls.base,
			"snapshot %q was replaced (epoch %d) after this ingest session opened on epoch %d; freeze with force=true to install over it, or discard=true to drop the session",
			ls.name, cur.Epoch, ls.base.Epoch)
		return
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.eng.Freeze(); err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, ls.base, "freezing successor: %v", err)
		return
	}
	// Seed the new generation's spatial memo from the base generation's:
	// every population the base built is carried forward by absorbing only
	// this generation's delta. The result is bit-identical to a from-scratch
	// build (a trie's shape is a pure function of its item set), so queries
	// cannot tell — except by latency — whether they hit a seed.
	seeds := map[string]*v6class.AddressSet{}
	ls.base.sets.each(func(key string, set *v6class.AddressSet) {
		pop, days, ok := parseSetKey(key)
		if !ok {
			return
		}
		if out, err := ls.eng.SpatialSetFrom(set, pop, days...); err == nil {
			seeds[key] = out
		}
	})
	installed := s.install(ls.name, ls.base.Source, ls.eng, seeds, 0, 0)
	delete(s.lives, ls.name)
	writeJSON(w, http.StatusOK, freezeResponse{
		metaResponse: metaOf(installed),
		BaseEpoch:    ls.base.Epoch,
		Records:      ls.records,
		IngestedDays: sortedDays(ls.days),
		SeededSets:   len(seeds),
	})
}

// parseSetKey inverts the spatial memo's key format, popName+"|"+daysKey:
// freeze uses it to recompute each memoized population incrementally for
// the successor generation.
func parseSetKey(key string) (v6class.Population, []int, bool) {
	popName, daysStr, ok := strings.Cut(key, "|")
	if !ok {
		return 0, nil, false
	}
	var pop v6class.Population
	switch popName {
	case "addrs":
		pop = v6class.Addresses
	case "64s":
		pop = v6class.Prefixes64
	default:
		return 0, nil, false
	}
	if daysStr == "" {
		return pop, nil, true
	}
	parts := strings.Split(daysStr, ",")
	days := make([]int, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil {
			return 0, nil, false
		}
		days[i] = d
	}
	return pop, days, true
}

func sortedDays(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}
