package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"v6class/internal/cdnlog"
	"v6class/internal/core"
	"v6class/internal/ipaddr"
	"v6class/synth"
)

// Serving benchmarks: request latency through the full handler stack
// (routing, snapshot resolution, analysis, JSON encoding, cache). They run
// in CI's bench job next to the ingestion benchmarks, so the perf
// trajectory covers both the write and the read path.

var (
	benchOnce   sync.Once
	benchServer *Server
	benchMux    http.Handler
	benchAddrs  []ipaddr.Addr
	benchPath   string
	benchDir    string
)

// TestMain removes the benchmark snapshot directory, which outlives any
// single benchmark because benchSetup shares it across them.
func TestMain(m *testing.M) {
	code := m.Run()
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

// benchSetup builds one moderately sized frozen census (a ±7d window of a
// scaled synthetic world) and a server around it, once per process.
func benchSetup(b *testing.B) {
	benchOnce.Do(func() {
		w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05, StudyDays: 40})
		c := core.NewCensus(core.CensusConfig{StudyDays: 40})
		for d := 10; d <= 24; d++ {
			c.AddDay(w.Day(d))
		}
		dir, err := os.MkdirTemp("", "v6served-bench")
		if err != nil {
			panic(err)
		}
		benchDir = dir
		benchPath = filepath.Join(dir, "bench.state")
		f, err := os.Create(benchPath)
		if err != nil {
			panic(err)
		}
		if _, err := c.WriteTo(f); err != nil {
			panic(err)
		}
		f.Close()

		benchServer = New(Options{})
		if _, err := benchServer.LoadFile("bench", benchPath); err != nil {
			panic(err)
		}
		benchMux = benchServer.Handler()
		benchAddrs = c.AddrsActiveOn(17)
		if len(benchAddrs) == 0 {
			panic("bench census has no active addresses")
		}
	})
}

// do issues one request through the handler stack and fails on non-200.
func do(b *testing.B, path string) {
	r := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	benchMux.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("GET %s: status %d: %s", path, w.Code, w.Body.String())
	}
}

// BenchmarkServeLookup measures the uncached point-lookup path (the
// latency floor of the service), with concurrent clients.
func BenchmarkServeLookup(b *testing.B) {
	benchSetup(b)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a := benchAddrs[i%len(benchAddrs)]
			do(b, "/v1/lookup?addr="+a.String()+"&ref=17&n=3")
			i++
		}
	})
}

// BenchmarkServeStabilityCold measures the full stability-table
// computation by varying parameters so every request misses the cache.
func BenchmarkServeStabilityCold(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		// The iteration index lands in n, so every request carries a
		// never-before-seen cache key (n barely affects the computation:
		// ClassifyDay scans every key regardless).
		do(b, fmt.Sprintf("/v1/stability?pop=addrs&ref=%d&n=%d&window=7", 10+i%15, 1+i))
	}
}

// BenchmarkServeStabilityCached measures the cache-hit path with
// concurrent clients asking the same expensive question.
func BenchmarkServeStabilityCached(b *testing.B) {
	benchSetup(b)
	do(b, "/v1/stability?pop=addrs&ref=17&n=3&window=7") // warm
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			do(b, "/v1/stability?pop=addrs&ref=17&n=3&window=7")
		}
	})
}

// BenchmarkServeDenseCold measures the densify sweep — the service's most
// expensive query — uncached (the density threshold n varies the key, so
// every request recomputes; the sweep cost is dominated by the population
// build and trie walk, which n barely affects).
func BenchmarkServeDenseCold(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		do(b, fmt.Sprintf("/v1/dense?from=10&to=24&n=%d&p=112&least=true", 2+i))
	}
}

// BenchmarkServeTopK measures a cached top-k aggregate query under
// concurrent clients.
func BenchmarkServeTopK(b *testing.B) {
	benchSetup(b)
	do(b, "/v1/topk?pop=addrs&p=48&k=10&day=17") // warm
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			do(b, "/v1/topk?pop=addrs&p=48&k=10&day=17")
		}
	})
}

// BenchmarkIngestLive measures one day-log POST through the full write
// path: request routing, body parse, and successor-census absorption. The
// live session persists across iterations (re-observing a day is set
// union at the census level, so the successor does not grow), matching
// the cost profile of a long-running live feed.
func BenchmarkIngestLive(b *testing.B) {
	benchSetup(b)
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05, StudyDays: 40})
	var buf bytes.Buffer
	if err := cdnlog.WriteDay(&buf, w.Day(30)); err != nil {
		b.Fatal(err)
	}
	body := buf.Bytes()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/v1/ingest?snap=bench", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		benchMux.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			b.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	// Drop the session so later benchmarks run against a clean server.
	r := httptest.NewRequest("POST", "/v1/freeze?snap=bench&discard=true", nil)
	benchMux.ServeHTTP(httptest.NewRecorder(), r)
}

// BenchmarkServeReload measures a full snapshot load + RCU swap.
func BenchmarkServeReload(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := benchServer.LoadFile("bench", benchPath); err != nil {
			b.Fatal(err)
		}
	}
}
