package serve

import (
	"fmt"
	"iter"
	"net/http"
	"net/url"
	"strconv"

	"v6class"
)

// The wire-grade enumeration surface: cursor-paged endpoints over the
// engine's ordered, resumable iterators, plus the analysis endpoints the
// cluster tier proxies (lifetime statistics, return probability, epoch
// stability, longest-stable-prefixes, MRA and aguri profiles, and the raw
// snapshot stream).
//
// Pagination contract. A page request names a canonical query (the
// parameters that define the enumeration) and carries at most one resume
// position: cursor= (an opaque token minted by the previous page) or
// after= (a bare key, the stateless resume primitive). The response ends
// with a cursor exactly when the enumeration may have more elements; a
// missing cursor means the stream is exhausted. Cursors pin the snapshot
// generation they were minted on — a reload between pages answers
// cursor_expired (HTTP 410) instead of silently splicing two different
// censuses into one enumeration — and they are bound to their canonical
// query, so a cursor cannot be replayed against different parameters.

// Page-size defaults and caps for the key-ordered enumerations.
const (
	defaultPageLimit = 1000
	maxPageLimit     = 10000
)

// pageStart resolves where a paged enumeration resumes: the validated
// cursor= position, the bare after= key, or "" for the first page. ok
// false means the error response has been written.
func pageStart(w http.ResponseWriter, q url.Values, snap *Snapshot, query string) (pos string, ok bool) {
	tok := q.Get("cursor")
	if tok == "" {
		return q.Get("after"), true
	}
	c, err := DecodeCursor(tok)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return "", false
	}
	if c.Snapshot != snap.Name || c.Query != query {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap,
			"cursor belongs to a different enumeration (cursor %q@%s, request %q@%s)",
			c.Query, c.Snapshot, query, snap.Name)
		return "", false
	}
	if c.Epoch != snap.Epoch {
		writeErr(w, http.StatusGone, CodeCursorExpired, snap,
			"cursor was minted on generation %d of snapshot %q but generation %d is now serving; restart the enumeration",
			c.Epoch, c.Snapshot, snap.Epoch)
		return "", false
	}
	return c.Pos, true
}

// nextCursor mints the token resuming query strictly after pos on snap's
// generation.
func nextCursor(snap *Snapshot, query, pos string) string {
	return Cursor{Snapshot: snap.Name, Epoch: snap.Epoch, Query: query, Pos: pos}.Encode()
}

// parsePopKey parses a resume key of the population: a /128 prefix or bare
// address for Addresses, a /64 prefix for Prefixes64.
func parsePopKey(s string, pop v6class.Population) (v6class.Prefix, error) {
	want := 128
	if pop == v6class.Prefixes64 {
		want = 64
	}
	p, err := v6class.ParsePrefix(s)
	if err != nil {
		a, aerr := v6class.ParseAddr(s)
		if aerr != nil || pop != v6class.Addresses {
			return v6class.Prefix{}, fmt.Errorf("resume key %q: %v", s, err)
		}
		p = v6class.PrefixFrom(a, 128)
	}
	if p.Bits() != want {
		return v6class.Prefix{}, fmt.Errorf("resume key %q: want a /%d key for this population, got /%d", s, want, p.Bits())
	}
	return p, nil
}

type keysPage struct {
	Snapshot string   `json:"snapshot"`
	Epoch    uint64   `json:"epoch"`
	Pop      string   `json:"pop"`
	Days     []int    `json:"days,omitempty"`
	Count    int      `json:"count"`
	Keys     []string `json:"keys"`
	Cursor   string   `json:"cursor,omitempty"`
}

// handleKeys pages the ordered key enumeration: every key of the
// population ever observed (no day selection), or the union of keys active
// on any selected day. Keys ascend in the canonical total order —
// addresses numerically, /64s by base address — identically on every
// engine implementation, which is what makes the cursor portable across a
// coordinator's backends.
func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	days, err := DecodeDaysOptional(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	limit, err := DecodeLimit(q, defaultPageLimit, maxPageLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	query := fmt.Sprintf("keys?pop=%s&days=%s", popName, daysKey(days))
	pos, ok := pageStart(w, q, snap, query)
	if !ok {
		return
	}
	var seq iter.Seq[v6class.Prefix]
	if pos == "" {
		seq, err = snap.Engine.KeysOrdered(pop, days...)
	} else {
		var after v6class.Prefix
		if after, err = parsePopKey(pos, pop); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
			return
		}
		seq, err = snap.Engine.KeysOrderedAfter(pop, after, days...)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	resp := keysPage{Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName, Days: days, Keys: []string{}}
	more := collectPage(seq, limit, func(p v6class.Prefix) { resp.Keys = append(resp.Keys, p.String()) })
	resp.Count = len(resp.Keys)
	if more {
		resp.Cursor = nextCursor(snap, query, resp.Keys[len(resp.Keys)-1])
	}
	writeJSON(w, http.StatusOK, resp)
}

// collectPage drains up to limit elements into emit and reports whether
// the sequence has at least one more (by peeking limit+1 before breaking),
// so an exactly-full final page carries no cursor.
func collectPage[T any](seq iter.Seq[T], limit int, emit func(T)) (more bool) {
	n := 0
	for v := range seq {
		if n == limit {
			return true
		}
		emit(v)
		n++
	}
	return false
}

type lifetimeRow struct {
	Prefix     string `json:"prefix"`
	First      int    `json:"first"`
	Last       int    `json:"last"`
	ActiveDays int    `json:"activeDays"`
	Runs       int    `json:"runs"`
}

type lifetimesPage struct {
	Snapshot string        `json:"snapshot"`
	Epoch    uint64        `json:"epoch"`
	Pop      string        `json:"pop"`
	Count    int           `json:"count"`
	Rows     []lifetimeRow `json:"rows"`
	Cursor   string        `json:"cursor,omitempty"`
}

// handleLifetimes pages every key of the population with its activity
// profile, in the canonical key order.
func (s *Server) handleLifetimes(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	limit, err := DecodeLimit(q, defaultPageLimit, maxPageLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	query := "lifetimes?pop=" + popName
	pos, ok := pageStart(w, q, snap, query)
	if !ok {
		return
	}
	var seq iter.Seq2[v6class.Prefix, v6class.Activity]
	if pos == "" {
		seq, err = snap.Engine.LifetimesOrdered(pop)
	} else {
		var after v6class.Prefix
		if after, err = parsePopKey(pos, pop); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
			return
		}
		seq, err = snap.Engine.LifetimesOrderedAfter(pop, after)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	resp := lifetimesPage{Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName, Rows: []lifetimeRow{}}
	n := 0
	more := false
	for p, act := range seq {
		if n == limit {
			more = true
			break
		}
		resp.Rows = append(resp.Rows, lifetimeRow{
			Prefix:     p.String(),
			First:      int(act.First),
			Last:       int(act.Last),
			ActiveDays: act.ActiveDays,
			Runs:       act.Runs,
		})
		n++
	}
	resp.Count = len(resp.Rows)
	if more {
		resp.Cursor = nextCursor(snap, query, resp.Rows[len(resp.Rows)-1].Prefix)
	}
	writeJSON(w, http.StatusOK, resp)
}

type stablePage struct {
	Snapshot string   `json:"snapshot"`
	Epoch    uint64   `json:"epoch"`
	Ref      int      `json:"ref"`
	N        int      `json:"n"`
	Count    int      `json:"count"`
	Addrs    []string `json:"addrs"`
	Cursor   string   `json:"cursor,omitempty"`
}

// handleStable pages the nd-stable addresses for a reference day in
// ascending address order, under the engine's default classification
// options (probe-target selection at wire scale).
func (s *Server) handleStable(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	ref, err := RequireInt(q, "ref")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	n, err := DecodeInt(q, "n", 3)
	if err != nil || n <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter n: want a positive day count")
		return
	}
	limit, err := DecodeLimit(q, defaultPageLimit, maxPageLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	query := fmt.Sprintf("stable?ref=%d&n=%d", ref, n)
	pos, ok := pageStart(w, q, snap, query)
	if !ok {
		return
	}
	var seq iter.Seq[v6class.Addr]
	if pos == "" {
		seq, err = snap.Engine.StableAddrsOrdered(ref, n)
	} else {
		after, aerr := v6class.ParseAddr(pos)
		if aerr != nil {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "resume key %q: %v", pos, aerr)
			return
		}
		seq, err = snap.Engine.StableAddrsOrderedAfter(ref, n, after)
	}
	if err != nil {
		status, code := codeOfEngineErr(err)
		writeErr(w, status, code, snap, "%v", err)
		return
	}
	resp := stablePage{Snapshot: snap.Name, Epoch: snap.Epoch, Ref: ref, N: n, Addrs: []string{}}
	more := collectPage(seq, limit, func(a v6class.Addr) { resp.Addrs = append(resp.Addrs, a.String()) })
	resp.Count = len(resp.Addrs)
	if more {
		resp.Cursor = nextCursor(snap, query, resp.Addrs[len(resp.Addrs)-1])
	}
	writeJSON(w, http.StatusOK, resp)
}

// cachedOrCompute is the manual caching flow for analysis endpoints whose
// engine call can fail (day-range validation): the engine answers first,
// failures map through codeOfEngineErr, and only successful bodies are
// cached.
func (s *Server) cachedOrCompute(w http.ResponseWriter, snap *Snapshot, key string, compute func() (any, error)) {
	full := snapKey(snap, key)
	if body, ok := s.cache.Get(full); ok {
		writeBody(w, http.StatusOK, body)
		return
	}
	v, err := compute()
	if err != nil {
		status, code := codeOfEngineErr(err)
		writeErr(w, status, code, snap, "%v", err)
		return
	}
	s.cached(w, snap, key, func() any { return v })
}

type lifetimeStatsResponse struct {
	Snapshot            string `json:"snapshot"`
	Epoch               uint64 `json:"epoch"`
	Pop                 string `json:"pop"`
	From                int    `json:"from"`
	To                  int    `json:"to"`
	Keys                int    `json:"keys"`
	SingleDay           int    `json:"singleDay"`
	SpanHistogram       []int  `json:"spanHistogram"`
	ActiveDaysHistogram []int  `json:"activeDaysHistogram"`
}

// handleLifetimeStats serves the aggregate lifetime statistics of a day
// range — the scalar complement of the paged /v1/lifetimes rows, and the
// form a coordinator can merge across backends (histograms are additive).
func (s *Server) handleLifetimeStats(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	from, err := RequireInt(q, "from")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	to, err := RequireInt(q, "to")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	key := fmt.Sprintf("lifetimestats?pop=%s&from=%d&to=%d", popName, from, to)
	s.cachedOrCompute(w, snap, key, func() (any, error) {
		st, err := snap.Engine.LifetimeStats(pop, from, to)
		if err != nil {
			return nil, err
		}
		return lifetimeStatsResponse{
			Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName, From: from, To: to,
			Keys: st.Keys, SingleDay: st.SingleDay,
			SpanHistogram: st.SpanHistogram, ActiveDaysHistogram: st.ActiveDaysHistogram,
		}, nil
	})
}

type activeResponse struct {
	Snapshot string `json:"snapshot"`
	Epoch    uint64 `json:"epoch"`
	Pop      string `json:"pop"`
	Days     []int  `json:"days"`
	Count    int    `json:"count"`
}

// handleActive counts the distinct keys active on a day (day=N) or on at
// least one day of a range (from=&to=).
func (s *Server) handleActive(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	days, err := DecodeDays(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	key := fmt.Sprintf("active?pop=%s&days=%s", popName, daysKey(days))
	s.cachedOrCompute(w, snap, key, func() (any, error) {
		var count int
		var err error
		if len(days) == 1 {
			count, err = snap.Engine.ActiveCount(pop, days[0])
		} else if days[len(days)-1]-days[0]+1 == len(days) {
			// A contiguous normalized selection is exactly ActiveInRange.
			count, err = snap.Engine.ActiveInRange(pop, days[0], days[len(days)-1])
		} else {
			// A sparse selection falls back to the ordered union sweep.
			seq, serr := snap.Engine.KeysOrdered(pop, days...)
			if serr != nil {
				return nil, serr
			}
			for range seq {
				count++
			}
		}
		if err != nil {
			return nil, err
		}
		return activeResponse{Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName, Days: days, Count: count}, nil
	})
}

type epochResponse struct {
	Snapshot string `json:"snapshot"`
	Epoch    uint64 `json:"epoch"`
	Pop      string `json:"pop"`
	AFrom    int    `json:"afrom"`
	ATo      int    `json:"ato"`
	BFrom    int    `json:"bfrom"`
	BTo      int    `json:"bto"`
	Count    int    `json:"count"`
}

// handleEpochStable counts keys active in both of two inclusive day ranges
// (the paper's 6m-/1y-stable classes).
func (s *Server) handleEpochStable(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	var bounds [4]int
	for i, name := range []string{"afrom", "ato", "bfrom", "bto"} {
		if bounds[i], err = RequireInt(q, name); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
			return
		}
	}
	key := fmt.Sprintf("epoch?pop=%s&afrom=%d&ato=%d&bfrom=%d&bto=%d", popName, bounds[0], bounds[1], bounds[2], bounds[3])
	s.cachedOrCompute(w, snap, key, func() (any, error) {
		count, err := snap.Engine.EpochStable(pop, bounds[0], bounds[1], bounds[2], bounds[3])
		if err != nil {
			return nil, err
		}
		return epochResponse{
			Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName,
			AFrom: bounds[0], ATo: bounds[1], BFrom: bounds[2], BTo: bounds[3], Count: count,
		}, nil
	})
}

type returnProbResponse struct {
	Snapshot      string    `json:"snapshot"`
	Epoch         uint64    `json:"epoch"`
	Pop           string    `json:"pop"`
	From          int       `json:"from"`
	To            int       `json:"to"`
	MaxGap        int       `json:"maxGap"`
	Probabilities []float64 `json:"probabilities"`
	Num           []int     `json:"num"`
	Den           []int     `json:"den"`
}

// handleReturnProb serves the return-probability curve with its raw
// per-gap tallies. The probabilities are a backend-local ratio; the num
// and den counts are additive across key partitions, which is what a
// coordinator sums before dividing once.
func (s *Server) handleReturnProb(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	from, err := RequireInt(q, "from")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	to, err := RequireInt(q, "to")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	maxGap, err := DecodeInt(q, "maxgap", 7)
	if err != nil || maxGap <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter maxgap: want a positive day count")
		return
	}
	key := fmt.Sprintf("returnprob?pop=%s&from=%d&to=%d&maxgap=%d", popName, from, to, maxGap)
	s.cachedOrCompute(w, snap, key, func() (any, error) {
		probs, err := snap.Engine.ReturnProbability(pop, from, to, maxGap)
		if err != nil {
			return nil, err
		}
		num, den, err := snap.Engine.ReturnCounts(pop, from, to, maxGap)
		if err != nil {
			return nil, err
		}
		return returnProbResponse{
			Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName,
			From: from, To: to, MaxGap: maxGap,
			Probabilities: probs, Num: num, Den: den,
		}, nil
	})
}

type lspRow struct {
	Prefix  string `json:"prefix"`
	Support uint64 `json:"support"`
}

type lspResponse struct {
	Snapshot   string   `json:"snapshot"`
	Epoch      uint64   `json:"epoch"`
	AFrom      int      `json:"afrom"`
	ATo        int      `json:"ato"`
	BFrom      int      `json:"bfrom"`
	BTo        int      `json:"bto"`
	MinBits    int      `json:"minBits"`
	MinSupport uint64   `json:"minSupport"`
	Rows       []lspRow `json:"rows"`
}

// handleLSP serves the Section 7.2 longest-stable-prefix discovery across
// two periods.
func (s *Server) handleLSP(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	var bounds [4]int
	var err error
	for i, name := range []string{"afrom", "ato", "bfrom", "bto"} {
		if bounds[i], err = RequireInt(q, name); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
			return
		}
	}
	minBits, err := DecodeInt(q, "minbits", 32)
	if err != nil || minBits < 0 || minBits > 128 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter minbits: want a prefix length in [0,128]")
		return
	}
	minSupport, err := DecodeInt(q, "minsupport", 2)
	if err != nil || minSupport < 1 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter minsupport: want a positive count")
		return
	}
	key := fmt.Sprintf("lsp?afrom=%d&ato=%d&bfrom=%d&bto=%d&minbits=%d&minsupport=%d",
		bounds[0], bounds[1], bounds[2], bounds[3], minBits, minSupport)
	s.cachedOrCompute(w, snap, key, func() (any, error) {
		lsps, err := snap.Engine.LongestStablePrefixes(bounds[0], bounds[1], bounds[2], bounds[3], minBits, uint64(minSupport))
		if err != nil {
			return nil, err
		}
		resp := lspResponse{
			Snapshot: snap.Name, Epoch: snap.Epoch,
			AFrom: bounds[0], ATo: bounds[1], BFrom: bounds[2], BTo: bounds[3],
			MinBits: minBits, MinSupport: uint64(minSupport), Rows: []lspRow{},
		}
		for _, p := range lsps {
			resp.Rows = append(resp.Rows, lspRow{Prefix: p.Prefix.String(), Support: p.Support})
		}
		return resp, nil
	})
}

type mraResponse struct {
	Snapshot string   `json:"snapshot"`
	Epoch    uint64   `json:"epoch"`
	Pop      string   `json:"pop"`
	Days     []int    `json:"days,omitempty"`
	N        uint64   `json:"n"`
	Counts   []uint64 `json:"counts"`
}

// handleMRA serves the multi-resolution aggregate counts n_p of the
// selected days' population (all study days when no selection is given),
// off the per-snapshot shared spatial memo — the same trie build dense and
// top-k use. Ratio series derive client-side from the counts.
func (s *Server) handleMRA(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	days, err := DecodeDaysOptional(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	key := fmt.Sprintf("mra?pop=%s&days=%s", popName, daysKey(days))
	s.cached(w, snap, key, func() any {
		m := snap.addressSet(pop, popName, days).MRA()
		return mraResponse{
			Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName, Days: days,
			N: m.N, Counts: m.Counts[:],
		}
	})
}

type aguriRow struct {
	Prefix string `json:"prefix"`
	Count  uint64 `json:"count"`
}

type aguriResponse struct {
	Snapshot string     `json:"snapshot"`
	Epoch    uint64     `json:"epoch"`
	Pop      string     `json:"pop"`
	Days     []int      `json:"days,omitempty"`
	Fraction float64    `json:"fraction"`
	Total    uint64     `json:"total"`
	Rows     []aguriRow `json:"rows"`
}

// handleAguri serves the aguri aggregation profile of the selected days'
// population: the prefixes aggregating at least fraction of total
// observations.
func (s *Server) handleAguri(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	days, err := DecodeDaysOptional(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	fraction, err := DecodeFloat(q, "fraction", 0.05)
	if err != nil || fraction <= 0 || fraction > 1 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter fraction: want a value in (0,1]")
		return
	}
	key := fmt.Sprintf("aguri?pop=%s&days=%s&fraction=%s", popName, daysKey(days), strconv.FormatFloat(fraction, 'g', -1, 64))
	s.cached(w, snap, key, func() any {
		set := snap.addressSet(pop, popName, days)
		resp := aguriResponse{
			Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName, Days: days,
			Fraction: fraction, Total: set.Total(), Rows: []aguriRow{},
		}
		for _, pc := range set.AguriProfile(fraction) {
			resp.Rows = append(resp.Rows, aguriRow{Prefix: pc.Prefix.String(), Count: pc.Count})
		}
		return resp
	})
}

// rankedStart resolves the offset of a ranked (offset-paged) enumeration:
// the validated cursor= position or the bare offset= parameter — the
// ranked analog of after=. ok false means the error response was written.
func rankedStart(w http.ResponseWriter, q url.Values, snap *Snapshot, query string) (int, bool) {
	if q.Get("cursor") != "" {
		pos, ok := pageStart(w, q, snap, query)
		if !ok {
			return 0, false
		}
		off, err := strconv.Atoi(pos)
		if err != nil || off < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "cursor position %q: want a non-negative offset", pos)
			return 0, false
		}
		return off, true
	}
	off, err := DecodeInt(q, "offset", 0)
	if err != nil || off < 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter offset: want a non-negative count")
		return 0, false
	}
	return off, true
}

// pageBounds clips [offset, offset+limit) to n elements and mints the
// next-page cursor when elements remain.
func pageBounds(snap *Snapshot, query string, offset, limit, n int) (lo, hi int, cursor string) {
	lo = min(offset, n)
	hi = min(offset+limit, n)
	if hi < n {
		cursor = nextCursor(snap, query, strconv.Itoa(hi))
	}
	return lo, hi, cursor
}

// isPaged reports whether a ranked endpoint request asked for the paged
// response shape rather than the classic capped one.
func isPaged(q url.Values) bool {
	return q.Get("cursor") != "" || q.Get("offset") != "" || q.Get("page") == "true"
}

type topkPageResponse struct {
	Snapshot string    `json:"snapshot"`
	Epoch    uint64    `json:"epoch"`
	Pop      string    `json:"pop"`
	P        int       `json:"p"`
	Days     []int     `json:"days"`
	Occupied int       `json:"occupied"`
	Offset   int       `json:"offset"`
	Count    int       `json:"count"`
	Rows     []topkRow `json:"rows"`
	Cursor   string    `json:"cursor,omitempty"`
}

// handleTopKPage is the paged form of /v1/topk: the full /p aggregate
// ranking (count descending, ties in prefix order — a deterministic total
// order, so offset pages never skip or repeat rows) with an offset cursor.
// The full ranking is memoized per snapshot; a page request slices it.
func (s *Server) handleTopKPage(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	pop, popName, err := DecodePop(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	// Unlike the classic form, the paged form allows an empty day
	// selection: the whole-study population, the shape the remote engine's
	// TopAggregates needs.
	days, err := DecodeDaysOptional(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	p, err := DecodeInt(q, "p", 48)
	if err != nil || p < 0 || p > 128 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter p: want a prefix length in [0,128]")
		return
	}
	limit, err := DecodeLimit(q, defaultPageLimit, maxPageLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	query := fmt.Sprintf("topk?pop=%s&p=%d&days=%s&page", popName, p, daysKey(days))
	offset, ok := rankedStart(w, q, snap, query)
	if !ok {
		return
	}
	rows := snap.results.do(maxResultEntries, query, func() any {
		set := snap.addressSet(pop, popName, days)
		aggs := set.TopAggregates(p, 0)
		out := make([]topkRow, len(aggs))
		for i, agg := range aggs {
			out[i] = topkRow{Prefix: agg.Prefix.String(), Count: agg.Count}
		}
		return out
	}).([]topkRow)
	lo, hi, cursor := pageBounds(snap, query, offset, limit, len(rows))
	writeJSON(w, http.StatusOK, topkPageResponse{
		Snapshot: snap.Name, Epoch: snap.Epoch, Pop: popName, P: p, Days: days,
		Occupied: len(rows), Offset: lo, Count: hi - lo, Rows: rows[lo:hi:hi], Cursor: cursor,
	})
}

// densePageAll is the memoized full dense sweep behind the paged form:
// every qualifying prefix, not just the example cap.
type densePageAll struct {
	prefixes []string
	covered  uint64
	possible float64
	density  float64
}

type densePageResponse struct {
	Snapshot string   `json:"snapshot"`
	Epoch    uint64   `json:"epoch"`
	N        uint64   `json:"n"`
	P        int      `json:"p"`
	Least    bool     `json:"leastSpecific"`
	Days     []int    `json:"days"`
	Prefixes int      `json:"prefixes"`
	Covered  uint64   `json:"coveredAddresses"`
	Possible float64  `json:"possibleAddresses"`
	Density  float64  `json:"density"`
	Offset   int      `json:"offset"`
	Count    int      `json:"count"`
	Page     []string `json:"page"`
	Cursor   string   `json:"cursor,omitempty"`
}

// handleDensePage is the paged form of /v1/dense: the complete list of
// qualifying prefixes (the unpaged endpoint caps examples at maxExamples)
// under an offset cursor. The sweep's prefix order is deterministic, so
// pages tile the result exactly.
func (s *Server) handleDensePage(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	days, err := DecodeDays(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	n, err := DecodeInt(q, "n", 2)
	if err != nil || n <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter n: want a positive count")
		return
	}
	p, err := DecodeInt(q, "p", 112)
	if err != nil || p < 0 || p > 128 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter p: want a prefix length in [0,128]")
		return
	}
	limit, err := DecodeLimit(q, defaultPageLimit, maxPageLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	least := q.Get("least") == "true"
	query := fmt.Sprintf("dense?n=%d&p=%d&least=%v&days=%s&page", n, p, least, daysKey(days))
	offset, ok := rankedStart(w, q, snap, query)
	if !ok {
		return
	}
	all := snap.results.do(maxResultEntries, query, func() any {
		set := snap.addressSet(v6class.Addresses, "addrs", days)
		cls := v6class.DensityClass{N: uint64(n), P: p}
		var res v6class.DensityResult
		if least {
			res = set.DenseLeastSpecific(cls)
		} else {
			res = set.DenseFixed(cls)
		}
		out := densePageAll{
			prefixes: make([]string, len(res.Prefixes)),
			covered:  res.CoveredAddresses,
			possible: res.PossibleAddresses,
			density:  res.Density(),
		}
		for i, pc := range res.Prefixes {
			out.prefixes[i] = pc.Prefix.String()
		}
		return out
	}).(densePageAll)
	lo, hi, cursor := pageBounds(snap, query, offset, limit, len(all.prefixes))
	writeJSON(w, http.StatusOK, densePageResponse{
		Snapshot: snap.Name, Epoch: snap.Epoch,
		N: uint64(n), P: p, Least: least, Days: days,
		Prefixes: len(all.prefixes), Covered: all.covered, Possible: all.possible, Density: all.density,
		Offset: lo, Count: hi - lo, Page: all.prefixes[lo:hi:hi], Cursor: cursor,
	})
}

// deferredWriter delays the 200 status until the first payload byte, so a
// snapshot stream that fails before writing anything can still answer with
// a proper error envelope.
type deferredWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (d *deferredWriter) Write(p []byte) (int, error) {
	if !d.wrote {
		d.wrote = true
		d.w.Header().Set("Content-Type", "application/octet-stream")
		d.w.WriteHeader(http.StatusOK)
	}
	return d.w.Write(p)
}

// snapshotInfoResponse is the ?info=1 envelope of /v1/snapshot: which
// snapshot generation is serving and what it was loaded from — format 2 is
// the mmap-layout default, 1 the legacy stream, 0 a generation built in
// memory (ingest/Install) rather than loaded from a file, in which case
// sizeBytes is 0 too.
type snapshotInfoResponse struct {
	metaResponse
	Source    string `json:"source"`
	Format    int    `json:"format"`
	SizeBytes int64  `json:"sizeBytes"`
	StudyDays int    `json:"studyDays"`
}

// handleSnapshotDump streams the engine's serialized census (the format
// Open and LoadFile read) — how an operator captures a backend's state, or
// seeds a new backend from a serving one. Cluster coordinators refuse
// serialization (their census is partitioned across backends), which
// surfaces as a bad_param envelope here. With ?info=1 it instead reports
// the serving generation's provenance: source path, on-disk snapshot
// format version, and file size.
func (s *Server) handleSnapshotDump(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	if r.URL.Query().Get("info") == "1" {
		writeJSON(w, http.StatusOK, snapshotInfoResponse{
			metaResponse: metaOf(snap),
			Source:       snap.Source,
			Format:       snap.Format,
			SizeBytes:    snap.SizeBytes,
			StudyDays:    snap.Engine.StudyDays(),
		})
		return
	}
	d := &deferredWriter{w: w}
	if _, err := snap.Engine.WriteTo(d); err != nil {
		if !d.wrote {
			status, code := codeOfEngineErr(err)
			writeErr(w, status, code, snap, "serializing snapshot: %v", err)
		}
		// Mid-stream failure: the status is already on the wire; the
		// truncated body is the client's signal.
		return
	}
}
