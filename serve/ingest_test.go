package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"v6class"
	"v6class/internal/cdnlog"
	"v6class/synth"
)

// logsBody serializes days [from, to] of the shared synthetic world (the
// same world buildCensus ingests) in the ingest text format.
func logsBody(t testing.TB, from, to int) []byte {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01, StudyDays: 30})
	var buf bytes.Buffer
	for d := from; d <= to; d++ {
		if err := cdnlog.WriteDay(&buf, w.Day(d)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// post sends a POST (with optional bearer token) and returns the response
// and raw body.
func post(t testing.TB, ts *httptest.Server, path string, body []byte, token string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestIngestFreezeLifecycle walks the full write path: ingest day logs into
// a live successor while reads keep answering from the frozen base, then
// freeze-install and verify the merged generation answers like a census fed
// every day directly — with its spatial memo seeded incrementally.
func TestIngestFreezeLifecycle(t *testing.T) {
	base := buildCensus(t, 0, 9)
	path := writeSnapshot(t, base, "live.state")
	s := New(Options{})
	snap1, err := s.LoadFile("live", path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime the base generation's spatial memo: this population must be
	// carried into the successor generation by delta absorption.
	var denseBefore denseResponse
	get(t, ts, "/v1/dense?from=0&to=14&n=1&p=112", &denseBefore)

	// The base census never saw day 12.
	var sum summaryResponse
	get(t, ts, "/v1/summary?day=12", &sum)
	if sum.Total != 0 {
		t.Fatalf("base generation Summary(12).Total = %d, want 0", sum.Total)
	}

	// Ingest days 10-12, then 13-14, in separate requests against the same
	// live session.
	resp, body := post(t, ts, "/v1/ingest?snap=live", logsBody(t, 10, 12), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.BaseEpoch != snap1.Epoch || len(ing.Days) != 3 || ing.Records == 0 {
		t.Fatalf("ingest response %+v, want baseEpoch %d, 3 days, records > 0", ing, snap1.Epoch)
	}
	resp, body = post(t, ts, "/v1/ingest?snap=live", logsBody(t, 13, 14), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if len(ing.TotalDays) != 5 || ing.TotalRecords <= ing.Records {
		t.Fatalf("cumulative ingest response %+v, want 5 total days", ing)
	}

	// An out-of-period day is refused without killing the session.
	resp, body = post(t, ts, "/v1/ingest?snap=live", []byte("#day 50\n2001:db8::1 3\n"), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-period ingest status %d: %s", resp.StatusCode, body)
	}

	// Reads still resolve the frozen base generation, bit for bit.
	var mid summaryResponse
	r := get(t, ts, "/v1/summary?day=12", &mid)
	if e := r.Header.Get("X-V6-Epoch"); e != strconv.FormatUint(snap1.Epoch, 10) {
		t.Fatalf("mid-ingest read epoch %s, want %d", e, snap1.Epoch)
	}
	if mid.Total != 0 {
		t.Fatalf("mid-ingest Summary(12).Total = %d, want 0 (successor must stay invisible)", mid.Total)
	}

	// Freeze: the successor becomes the serving generation atomically.
	resp, body = post(t, ts, "/v1/freeze?snap=live", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("freeze status %d: %s", resp.StatusCode, body)
	}
	var fr freezeResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Epoch <= snap1.Epoch || fr.BaseEpoch != snap1.Epoch || len(fr.IngestedDays) != 5 {
		t.Fatalf("freeze response %+v, want epoch > %d over base %d with 5 days", fr, snap1.Epoch, snap1.Epoch)
	}
	if fr.SeededSets == 0 {
		t.Fatal("freeze seeded no spatial sets despite a primed base memo")
	}

	// White box: the installed snapshot's memo already holds the primed
	// population — before any query touches the new generation — and the
	// seeded set is bit-identical to a from-scratch build on the new engine.
	snap2 := s.Snapshot("live")
	if snap2.Epoch != fr.Epoch {
		t.Fatalf("installed epoch %d, want %d", snap2.Epoch, fr.Epoch)
	}
	seeded := map[string]bool{}
	snap2.sets.each(func(key string, set *v6class.AddressSet) {
		seeded[key] = true
		pop, days, ok := parseSetKey(key)
		if !ok {
			t.Errorf("unparseable memo key %q", key)
			return
		}
		want, err := snap2.Engine.SpatialSet(pop, days...)
		if err != nil {
			t.Errorf("rebuilding %q: %v", key, err)
			return
		}
		if set.Trie().String() != want.Trie().String() {
			t.Errorf("seeded set %q differs from a from-scratch build", key)
		}
	})
	wantKey := "addrs|" + daysKey([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	if !seeded[wantKey] {
		t.Fatalf("memo not seeded with %q; has %v", wantKey, seeded)
	}

	// The merged generation answers like a census fed all 15 days directly.
	direct := buildCensus(t, 0, 14)
	var after summaryResponse
	get(t, ts, "/v1/summary?day=12", &after)
	want := direct.Summary(12)
	if after.Total != want.Total || after.MACs != want.MACs || after.Native != want.Native {
		t.Fatalf("merged Summary(12) = %+v, want %+v", after, want)
	}
	refServer := New(Options{})
	if _, err := refServer.LoadFile("ref", writeSnapshot(t, direct, "ref.state")); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refServer.Handler())
	defer refTS.Close()
	for _, q := range []string{"/v1/dense?from=0&to=14&n=1&p=112", "/v1/topk?pop=64s&from=0&to=14&p=48&k=5"} {
		respA, bodyA := rawGet(t, ts, q)
		respB, bodyB := rawGet(t, refTS, q)
		if respA.StatusCode != 200 || respB.StatusCode != 200 || !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("query %s: merged generation answers differently from the direct census\ngot:  %s\nwant: %s", q, bodyA, bodyB)
		}
	}

	// The session was consumed by the install.
	if resp, body := post(t, ts, "/v1/freeze?snap=live", nil, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("freeze after freeze: %d %s, want 404", resp.StatusCode, body)
	}
}

// rawGet fetches a path and returns the response and raw body.
func rawGet(t testing.TB, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestFreezeConflictForceDiscard covers the session-vs-reload race: a
// freeze whose base generation was replaced answers 409 until the client
// decides (force installs anyway, discard drops the session).
func TestFreezeConflictForceDiscard(t *testing.T) {
	base := buildCensus(t, 0, 9)
	path := writeSnapshot(t, base, "live.state")
	s := New(Options{})
	if _, err := s.LoadFile("live", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := post(t, ts, "/v1/ingest?snap=live", logsBody(t, 10, 10), ""); resp.StatusCode != 200 {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	reloaded, err := s.Reload("live", "")
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts, "/v1/freeze?snap=live", nil, "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("freeze after reload: %d %s, want 409", resp.StatusCode, body)
	}
	resp, body = post(t, ts, "/v1/freeze?snap=live&force=true", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced freeze: %d %s", resp.StatusCode, body)
	}
	var fr freezeResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Epoch <= reloaded.Epoch {
		t.Fatalf("forced install epoch %d not above reloaded epoch %d", fr.Epoch, reloaded.Epoch)
	}

	// A fresh session can be discarded without installing anything.
	if resp, body := post(t, ts, "/v1/ingest?snap=live", logsBody(t, 11, 11), ""); resp.StatusCode != 200 {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	epoch := s.Snapshot("live").Epoch
	resp, body = post(t, ts, "/v1/freeze?snap=live&discard=true", nil, "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"discarded":true`)) {
		t.Fatalf("discard: %d %s", resp.StatusCode, body)
	}
	if got := s.Snapshot("live").Epoch; got != epoch {
		t.Fatalf("discard installed a generation: epoch %d -> %d", epoch, got)
	}
	if resp, _ := post(t, ts, "/v1/freeze?snap=live", nil, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("freeze of discarded session: %d, want 404", resp.StatusCode)
	}
	var sum summaryResponse
	get(t, ts, "/v1/summary?day=11", &sum)
	if sum.Total != 0 {
		t.Fatalf("discarded day visible: Summary(11).Total = %d", sum.Total)
	}
}

// TestWriteEndpointAuth pins the write-path gating: read-only servers
// refuse outright, token-bearing servers demand the token.
func TestWriteEndpointAuth(t *testing.T) {
	base := buildCensus(t, 0, 9)
	path := writeSnapshot(t, base, "live.state")

	t.Run("readonly", func(t *testing.T) {
		s := New(Options{ReadOnly: true, AdminToken: "sek"})
		if _, err := s.LoadFile("live", path); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for _, ep := range []string{"/v1/ingest?snap=live", "/v1/freeze?snap=live"} {
			// Even the admin token does not open a read-only server.
			if resp, _ := post(t, ts, ep, logsBody(t, 10, 10), "sek"); resp.StatusCode != http.StatusForbidden {
				t.Fatalf("%s on read-only server: %d, want 403", ep, resp.StatusCode)
			}
		}
	})

	t.Run("token", func(t *testing.T) {
		s := New(Options{AdminToken: "sek"})
		if _, err := s.LoadFile("live", path); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for _, token := range []string{"", "wrong"} {
			if resp, _ := post(t, ts, "/v1/ingest?snap=live", logsBody(t, 10, 10), token); resp.StatusCode != http.StatusForbidden {
				t.Fatalf("ingest with token %q: want 403", token)
			}
		}
		if resp, body := post(t, ts, "/v1/ingest?snap=live", logsBody(t, 10, 10), "sek"); resp.StatusCode != http.StatusOK {
			t.Fatalf("authorized ingest: %d %s", resp.StatusCode, body)
		}
		if resp, _ := post(t, ts, "/v1/freeze?snap=live", nil, ""); resp.StatusCode != http.StatusForbidden {
			t.Fatal("unauthorized freeze: want 403")
		}
		if resp, body := post(t, ts, "/v1/freeze?snap=live", nil, "sek"); resp.StatusCode != http.StatusOK {
			t.Fatalf("authorized freeze: %d %s", resp.StatusCode, body)
		}
	})
}

// TestDaysPermutationsShareOneBuild pins the daysKey normalization fix:
// every spelling of the same day set must hit one memoized population (the
// memo holds only maxSetEntries populations, so a permutation that keyed
// separately would rebuild and evict) and echo the canonical day list.
func TestDaysPermutationsShareOneBuild(t *testing.T) {
	direct := buildCensus(t, 5, 19)
	s := New(Options{})
	if _, err := s.LoadFile("a", writeSnapshot(t, direct, "a.state")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var first []byte
	for _, q := range []string{"days=6,7", "days=7,6", "days=6,6,7"} {
		resp, body := rawGet(t, ts, "/v1/dense?"+q+"&n=1&p=112")
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", q, resp.StatusCode, body)
		}
		if first == nil {
			first = body
			var d denseResponse
			if err := json.Unmarshal(body, &d); err != nil {
				t.Fatal(err)
			}
			if len(d.Days) != 2 || d.Days[0] != 6 || d.Days[1] != 7 {
				t.Fatalf("echoed days %v, want the normalized [6 7]", d.Days)
			}
		} else if !bytes.Equal(first, body) {
			t.Fatalf("%s answered differently from days=6,7:\n%s\nvs\n%s", q, body, first)
		}
	}
	// topk over the same selection shares the same single population.
	if resp, body := rawGet(t, ts, "/v1/topk?days=7,6&p=48&k=5"); resp.StatusCode != 200 {
		t.Fatalf("topk: %d %s", resp.StatusCode, body)
	}
	builds := 0
	s.Snapshot("a").sets.each(func(key string, _ *v6class.AddressSet) {
		builds++
		if key != "addrs|6,7" {
			t.Errorf("unexpected memo key %q", key)
		}
	})
	if builds != 1 {
		t.Fatalf("%d population builds for one day set, want 1", builds)
	}
}

// TestReloadReturnsOwnGeneration pins the Reload plumbing fix: each
// concurrent Reload must report the generation it itself installed, so N
// racing reloads return N distinct epochs.
func TestReloadReturnsOwnGeneration(t *testing.T) {
	base := buildCensus(t, 0, 9)
	path := writeSnapshot(t, base, "live.state")
	s := New(Options{})
	if _, err := s.LoadFile("live", path); err != nil {
		t.Fatal(err)
	}
	const n = 8
	snaps := make([]*Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sn, err := s.Reload("live", "")
			if err != nil {
				t.Error(err)
				return
			}
			snaps[i] = sn
		}(i)
	}
	wg.Wait()
	epochs := map[uint64]bool{}
	for _, sn := range snaps {
		if sn == nil {
			t.Fatal("a reload returned no snapshot")
		}
		epochs[sn.Epoch] = true
	}
	if len(epochs) != n {
		t.Fatalf("%d concurrent reloads reported %d distinct epochs; each must return its own install", n, len(epochs))
	}
}

// TestConcurrentReadsDuringIngestFreeze is the write-path race test: read
// handlers hammer the server while a full ingest+freeze cycle runs. Every
// response must belong wholly to the base or the merged generation —
// identified by its epoch header and byte-identical to that generation's
// canonical answer — never to a partial census.
func TestConcurrentReadsDuringIngestFreeze(t *testing.T) {
	base := buildCensus(t, 0, 9)
	path := writeSnapshot(t, base, "live.state")
	s := New(Options{})
	snap1, err := s.LoadFile("live", path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := []string{
		"/v1/summary?day=12",
		"/v1/dense?from=8&to=12&n=1&p=112&limit=5",
		"/v1/stability?pop=addrs&ref=8&n=2&window=2",
		"/v1/topk?pop=64s&from=8&to=12&p=48&k=5",
	}
	before := map[string]string{}
	for _, q := range queries {
		_, b := rawGet(t, ts, q)
		before[q] = string(b)
	}

	type obs struct {
		q, epoch, body string
	}
	var (
		mu   sync.Mutex
		seen []obs
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range queries {
					resp, err := ts.Client().Get(ts.URL + q)
					if err != nil {
						t.Error(err)
						return
					}
					b, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode != 200 {
						t.Errorf("%s: status %d mid-cycle", q, resp.StatusCode)
						return
					}
					mu.Lock()
					seen = append(seen, obs{q, resp.Header.Get("X-V6-Epoch"), string(b)})
					mu.Unlock()
				}
			}
		}()
	}

	// The writer: one day per request, then the freeze.
	for d := 10; d <= 14; d++ {
		if resp, body := post(t, ts, "/v1/ingest?snap=live", logsBody(t, d, d), ""); resp.StatusCode != 200 {
			t.Fatalf("ingest day %d: %d %s", d, resp.StatusCode, body)
		}
	}
	if resp, body := post(t, ts, "/v1/freeze?snap=live", nil, ""); resp.StatusCode != 200 {
		t.Fatalf("freeze: %d %s", resp.StatusCode, body)
	}
	close(stop)
	wg.Wait()

	snap2 := s.Snapshot("live")
	after := map[string]string{}
	for _, q := range queries {
		_, b := rawGet(t, ts, q)
		after[q] = string(b)
	}
	e1 := strconv.FormatUint(snap1.Epoch, 10)
	e2 := strconv.FormatUint(snap2.Epoch, 10)
	fromOld, fromNew := 0, 0
	for _, o := range seen {
		switch o.epoch {
		case e1:
			fromOld++
			if o.body != before[o.q] {
				t.Fatalf("old-generation response to %s drifted mid-ingest:\n%s\nvs\n%s", o.q, o.body, before[o.q])
			}
		case e2:
			fromNew++
			if o.body != after[o.q] {
				t.Fatalf("new-generation response to %s differs from its canonical answer:\n%s\nvs\n%s", o.q, o.body, after[o.q])
			}
		default:
			t.Fatalf("response from unknown generation epoch %s (have %s, %s)", o.epoch, e1, e2)
		}
	}
	if fromOld == 0 {
		t.Error("hammer never observed the base generation")
	}
	t.Logf("observed %d old-generation and %d new-generation responses", fromOld, fromNew)
}

// TestCacheBodyImmutable enforces Get's aliasing contract: serving
// truncated variants of a cached sweep must never mutate the cached body
// (truncation happens on a struct copy, not the cached bytes).
func TestCacheBodyImmutable(t *testing.T) {
	direct := buildCensus(t, 5, 19)
	s := New(Options{})
	if _, err := s.LoadFile("a", writeSnapshot(t, direct, "a.state")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := "/v1/dense?from=5&to=19&n=1&p=112&limit="
	_, full1 := rawGet(t, ts, q+"50")
	_, short := rawGet(t, ts, q+"2")
	_, full2 := rawGet(t, ts, q+"50")
	if bytes.Equal(full1, short) {
		t.Fatal("limit=2 body equals limit=50 body; truncation is not exercised")
	}
	if !bytes.Equal(full1, full2) {
		t.Fatalf("cached limit=50 body changed after serving limit=2:\n%s\nvs\n%s", full1, full2)
	}
}
