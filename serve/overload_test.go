package serve

// Admission-control tests: with SweepConcurrency saturated, the expensive
// sweep endpoints shed with a 429 "overloaded" envelope and a Retry-After
// hint while the cheap endpoints keep answering, and the slot frees the
// moment the occupying sweep finishes.

import (
	"errors"
	"io"
	"iter"
	"net/http"
	"net/http/httptest"
	"testing"

	"v6class"
)

// gatedEngine wraps a healthy engine but parks KeysOrdered until released,
// so a test can hold the sweep concurrency slot open deliberately.
type gatedEngine struct {
	v6class.Engine
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedEngine) KeysOrdered(pop v6class.Population, days ...int) (iter.Seq[v6class.Prefix], error) {
	g.entered <- struct{}{}
	<-g.gate
	return g.Engine.KeysOrdered(pop, days...)
}

// overloadEngine builds a tiny frozen census.
func overloadEngine(t *testing.T) v6class.Engine {
	t.Helper()
	eng, err := v6class.New(v6class.WithStudyDays(5), v6class.WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]v6class.DayLog, 5)
	for day := range logs {
		logs[day].Day = day
		logs[day].Records = []v6class.Record{
			{Addr: v6class.MustParseAddr("2001:db8::1"), Hits: 1},
			{Addr: v6class.MustParseAddr("2001:db8::2"), Hits: 1},
		}
	}
	if err := eng.AddDays(logs); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSweepSaturationSheds(t *testing.T) {
	g := &gatedEngine{
		Engine:  overloadEngine(t),
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
	s := New(Options{SweepConcurrency: 1})
	s.Install("census", "", g)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Occupy the only sweep slot with a request parked inside the engine.
	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/keys?pop=addrs")
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-g.entered

	// Saturated: another sweep is shed immediately with the full
	// overloaded envelope and a retry hint.
	resp, err := http.Get(srv.URL + "/v1/keys?pop=addrs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("saturated sweep Retry-After = %q, want \"1\"", ra)
	}
	we := DecodeError(resp.StatusCode, body)
	if we.Code != CodeOverloaded {
		t.Fatalf("envelope code = %q, want %q", we.Code, CodeOverloaded)
	}
	if !errors.Is(we, ErrOverloaded) {
		t.Fatalf("envelope does not unwrap to ErrOverloaded: %v", we)
	}

	// Cheap endpoints are not admission-limited: the census keeps
	// answering scalars while the sweeps are saturated.
	sresp, err := http.Get(srv.URL + "/v1/summary?day=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body) //nolint:errcheck
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("scalar endpoint under sweep saturation = %d, want 200", sresp.StatusCode)
	}

	// Release the parked sweep; it completes and frees the slot.
	close(g.gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("occupying sweep finished with %d, want 200", code)
	}
	resp2, err := http.Get(srv.URL + "/v1/keys?pop=addrs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("sweep after release = %d, want 200", resp2.StatusCode)
	}
}

// TestSweepLimitDisabled proves a negative SweepConcurrency turns the
// semaphore off entirely.
func TestSweepLimitDisabled(t *testing.T) {
	s := New(Options{SweepConcurrency: -1})
	if s.sweepSem != nil {
		t.Fatal("negative SweepConcurrency still built a semaphore")
	}
	s2 := New(Options{})
	if s2.sweepSem == nil || cap(s2.sweepSem) != defaultSweepConcurrency {
		t.Fatalf("default sweep semaphore capacity = %d, want %d", cap(s2.sweepSem), defaultSweepConcurrency)
	}
}
