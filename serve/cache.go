package serve

import (
	"sync"
	"sync/atomic"
)

// The result cache for expensive analyses (densify sweeps, stability
// tables, top-k aggregates, experiment regenerations). It is sharded so
// concurrent request handlers contend only on the shard their key hashes
// to, and bounded per shard with arbitrary eviction — correctness never
// depends on an entry being present, because every key embeds the snapshot
// epoch it was computed from (see doc.go), so a stale engine can never be
// read through a fresh key.

// cacheShards is the shard count; a power of two so the key hash's low
// bits select a shard.
const cacheShards = 16

// Cache is a sharded in-memory map from canonical query keys to rendered
// response bodies. The zero value is not usable; construct with newCache.
type Cache struct {
	shards   [cacheShards]cacheShard
	perShard int
	hits     atomic.Uint64
	misses   atomic.Uint64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string][]byte
	// Pad to a full 64-byte cache line (8B mutex + 8B map header + 48B)
	// so neighboring shard locks don't false-share.
	_ [48]byte
}

// newCache returns a Cache bounded at roughly entries total entries
// (rounded up to a multiple of the shard count); entries <= 0 selects the
// default of 4096.
func newCache(entries int) *Cache {
	if entries <= 0 {
		entries = 4096
	}
	per := (entries + cacheShards - 1) / cacheShards
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string][]byte)
	}
	return c
}

// fnv1a hashes a key (FNV-1a 64).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)&(cacheShards-1)]
}

// Get returns the cached body for key, if present. The returned slice
// aliases the map entry — it is NOT a copy, so a mutation would corrupt
// the body served to every later hit of the key, silently and without a
// race report (the mutation happens outside the shard lock). The contract
// is therefore: a cached body is immutable from the moment it is Put.
//
// Audit of the callers (enforced by TestCacheBodyImmutable):
//   - cachedBody/cached hand the slice straight to writeBody, which only
//     reads it (http.ResponseWriter.Write never mutates its argument).
//   - handleDense/handleTopK render-key hits do the same. Their limit
//     truncation happens on a COPY of the memoized response STRUCT before
//     marshaling — never on a cached byte slice — and json.Marshal
//     allocates a fresh buffer, so the slice later Put is not shared with
//     any response already written.
//
// New callers must preserve this: render first, Put the final bytes, and
// never append to or slice-assign into a body that came out of Get.
func (c *Cache) Get(key string) ([]byte, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores a body under key, evicting an arbitrary entry from the shard
// when it is full. Concurrent computations of the same key may both Put;
// last write wins and both values are equally valid (handlers are
// deterministic functions of the key).
func (c *Cache) Put(key string, v []byte) {
	sh := c.shard(key)
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && len(sh.m) >= c.perShard {
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
