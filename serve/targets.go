package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"v6class"
	"v6class/target"
)

// maxTargetBudget bounds one /v1/targets request: the generator ranks
// candidates lazily, but each row still renders into the response body,
// so the budget is a response-size bound as much as a compute one.
const maxTargetBudget = 4096

type targetRow struct {
	Addr   string  `json:"addr"`
	Region string  `json:"region"`
	Score  float64 `json:"score"`
}

type targetsResponse struct {
	Budget  int         `json:"budget"`
	N       uint64      `json:"n"`
	P       int         `json:"p"`
	Per64   int         `json:"per64"`
	Seed    uint64      `json:"seed"`
	Days    []int       `json:"days"`
	Regions []string    `json:"regions"`
	Targets []targetRow `json:"targets"`
}

// handleTargets serves GET /v1/targets: the census-driven target
// generator over this snapshot's population. The model trains on the
// selected days' dense regions (n=N, p=P — the same density-class
// vocabulary as /v1/dense) and returns up to budget ranked candidate
// addresses not in the census, with the per-/64 fairness cap applied.
// Training builds the same spatial population as the dense and top-k
// endpoints, so repeated target pulls over one day selection share a
// single trie build through the snapshot's memo; the request runs under
// the sweep admission limit because a cold pull is a full population
// build plus a model training pass.
func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	days, err := daysParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "%v", err)
		return
	}
	budget, err := intParam(r, "budget", 64)
	if err != nil || budget <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter budget: want a positive count")
		return
	}
	if budget > maxTargetBudget {
		budget = maxTargetBudget
	}
	n, err := intParam(r, "n", 3)
	if err != nil || n <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter n: want a positive count")
		return
	}
	p, err := intParam(r, "p", 120)
	if err != nil || p < 0 || p > 128 {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter p: want a prefix length in [0,128]")
		return
	}
	per64, err := intParam(r, "per64", 16)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter per64: %v", err)
		return
	}
	var seed uint64
	if v := r.URL.Query().Get("seed"); v != "" {
		seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadParam, snap, "parameter seed: %v", err)
			return
		}
	}
	key := fmt.Sprintf("targets?budget=%d&n=%d&p=%d&per64=%d&seed=%d&days=%s",
		budget, n, p, per64, seed, daysKey(days))
	s.cached(w, snap, key, func() any {
		set := snap.addressSet(v6class.Addresses, "addrs", days)
		gen := strict(target.NewGenerator(set,
			target.WithSeed(seed),
			target.WithDensity(v6class.DensityClass{N: uint64(n), P: p}),
			target.WithPer64(per64)))
		resp := targetsResponse{
			Budget: budget, N: uint64(n), P: p, Per64: per64, Seed: seed,
			Days: days, Regions: []string{}, Targets: []targetRow{},
		}
		for _, rp := range gen.Regions() {
			resp.Regions = append(resp.Regions, rp.String())
		}
		for c := range gen.Candidates(budget) {
			resp.Targets = append(resp.Targets, targetRow{
				Addr: c.Addr.String(), Region: c.Region.String(), Score: c.Score,
			})
		}
		return resp
	})
}
