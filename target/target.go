// Package target closes the measurement loop of Plonka & Berger (IMC
// 2015): it turns the census's spatial knowledge into active-measurement
// work and feeds the results back through ingestion.
//
// Three pieces compose, mirroring the 6Prob pipeline shape:
//
//   - Generator: a per-nybble conditional-probability model trained from
//     an *v6class.AddressSet's dense regions. It walks the arena trie,
//     learns for each dense prefix a first-order Markov chain over nybble
//     values (each nybble's distribution conditioned on the previous
//     nybble — the conditional-entropy structure of 6Prob's quan/prob.go),
//     and emits a ranked stream of candidate addresses NOT already in the
//     census: highest model probability first, deterministically seeded,
//     with a budget and a per-/64 fairness cap.
//
//   - AliasDetector: a prefix-level detector with cooldown (6Prob's
//     aliasDetector shape). When hits concentrate under one /96–/64, it
//     probes K seeded-pseudorandom addresses under the prefix; if every
//     one answers, the prefix is aliased — its "hits" are an artifact of a
//     CPE answering the whole delegation — so generation under it is
//     suppressed for a cooldown and its hits are dropped from scan
//     results. The aliased set is surfaced as an enumeration so ingest
//     can collapse aliased /64s to a single representative.
//
//   - Scan: a bounded worker-pool scheduler driving candidates through a
//     pluggable Prober — implemented in-tree by probe.Topology (echo
//     replies in the simulated world) and dnssim.Zone (PTR existence) —
//     rate-limited and cancellable, with hits batched into DayLog form
//     for re-ingestion through a v6class.Successor generation.
//
// Loop ties them together: generate → scan → ingest → freeze, each round
// training on the census the previous round grew.
//
// # Determinism
//
// Everything downstream of a fixed (census, seed, Prober) is
// deterministic: the model is trained by an in-order trie walk, candidate
// ranking breaks probability ties by a seeded hash and then by address
// value, alias probes are a pure function of (seed, prefix), and scan
// results are sorted canonically — so two runs with the same seed produce
// byte-identical candidate streams and hit sets regardless of worker
// scheduling.
package target

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"v6class"
)

// Prober is the probe primitive the scheduler drives: report whether a
// single target answers. Implementations must be safe for concurrent use;
// probe.Topology and dnssim.Zone satisfy it in-tree, a real scanner wraps
// raw sockets. An error aborts the scan (a non-answer is (false, nil)).
type Prober interface {
	Probe(ctx context.Context, target v6class.Addr) (bool, error)
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(ctx context.Context, target v6class.Addr) (bool, error)

// Probe implements Prober.
func (f ProberFunc) Probe(ctx context.Context, target v6class.Addr) (bool, error) {
	return f(ctx, target)
}

// Candidate is one generated probe target.
type Candidate struct {
	// Addr is the candidate address.
	Addr v6class.Addr
	// Region is the dense prefix the candidate was drawn from.
	Region v6class.Prefix
	// Score is the candidate's log2 model probability (region prior plus
	// per-nybble conditional terms). Always <= 0; streams rank higher
	// (closer to zero) scores first. Uniform baseline candidates carry
	// their uniform log2 probability within the region set.
	Score float64
}

// Encode renders a candidate in the loop's one-line wire form:
//
//	<addr> <region> <score-bits>
//
// with the score as the hexadecimal IEEE-754 bit pattern, so the
// round-trip through text is exact (candidate streams are compared
// byte-for-byte in the determinism conformance tests).
func (c Candidate) Encode() string {
	return fmt.Sprintf("%v %v %016x", c.Addr, c.Region, math.Float64bits(c.Score))
}

// DecodeCandidate parses the Encode form.
func DecodeCandidate(s string) (Candidate, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return Candidate{}, fmt.Errorf("target: candidate %q: want 3 fields, have %d", s, len(fields))
	}
	addr, err := v6class.ParseAddr(fields[0])
	if err != nil {
		return Candidate{}, fmt.Errorf("target: candidate addr: %w", err)
	}
	region, err := v6class.ParsePrefix(fields[1])
	if err != nil {
		return Candidate{}, fmt.Errorf("target: candidate region: %w", err)
	}
	bits, err := strconv.ParseUint(fields[2], 16, 64)
	if err != nil {
		return Candidate{}, fmt.Errorf("target: candidate score: %w", err)
	}
	return Candidate{Addr: addr, Region: region, Score: math.Float64frombits(bits)}, nil
}

// setNybble returns a with its pos-th nybble (0 = most significant, 31 =
// least) set to v.
func setNybble(a v6class.Addr, pos int, v uint8) v6class.Addr {
	b := a.As16()
	i := pos / 2
	if pos%2 == 0 {
		b[i] = b[i]&0x0f | v<<4
	} else {
		b[i] = b[i]&0xf0 | v&0x0f
	}
	return v6class.AddrFrom16(b)
}

// splitmix64 is the 64-bit SplitMix step: a tiny, well-mixed, allocation-
// free deterministic generator. All of the package's seeded randomness
// (tie-break hashing, alias probe IIDs, the uniform baseline) derives from
// it so runs are reproducible across platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// addrHash folds an address and a seed into a 64-bit tie-break hash.
func addrHash(seed uint64, a v6class.Addr) uint64 {
	return splitmix64(seed ^ splitmix64(a.NetworkID()) ^ splitmix64(a.IID()*0x9e3779b97f4a7c15))
}
