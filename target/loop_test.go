package target_test

import (
	"bytes"
	"context"
	"slices"
	"testing"

	"v6class"
	"v6class/probe"
	"v6class/synth"
	"v6class/target"
)

const (
	loopStudyDays = 16
	loopProbeDay0 = 8
	loopRounds    = 3
)

// aliasedInjected is the ground-truth aliased /64 planted into the world.
var aliasedInjected = v6class.MustParsePrefix("2a00:1450:100:a11a::/64")

// plantAddrs are phantom census records under the aliased /64, shaped so
// the Markov model generalizes beyond them (shared middle-nybble context)
// and proposes fresh candidates there.
func plantAddrs() []v6class.Addr {
	base := aliasedInjected.First()
	var out []v6class.Addr
	for _, iid := range []uint64{0x111, 0x211, 0x311, 0x411, 0x511, 0x112, 0x113, 0x114} {
		out = append(out, base.WithIID(iid))
	}
	return out
}

// loopWorld builds the deterministic test fixture: a synthetic world, a
// parent census of day 0 (plus the aliased plant), and per-day
// topologies with the aliased prefix injected.
func loopWorld(t testing.TB) (*synth.World, v6class.Engine) {
	t.Helper()
	world := synth.NewWorld(synth.Config{Seed: 11, Scale: 0.05, StudyDays: loopStudyDays})
	logs := world.Days(0, 1)
	for _, a := range plantAddrs() {
		logs[0].Records = append(logs[0].Records, v6class.Record{Addr: a, Hits: 1})
	}
	eng, err := v6class.New(v6class.WithStudyDays(loopStudyDays))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDays(logs); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return world, eng
}

func topoFor(world *synth.World, day int) *probe.Topology {
	topo := probe.NewTopology(world, day)
	topo.MarkAliased(aliasedInjected)
	return topo
}

func newLoop(t testing.TB, world *synth.World, eng v6class.Engine) *target.Loop {
	t.Helper()
	loop, err := target.NewLoop(eng, topoFor(world, loopProbeDay0), target.LoopConfig{
		Seed:     17,
		Budget:   256,
		Density:  v6class.DensityClass{N: 3, P: 116},
		Per64:    64,
		Days:     []int{0},
		ProbeDay: loopProbeDay0,
		Workers:  4,
		Alias:    target.AliasConfig{K: 8, Trigger: 3, Cooldown: 8},
		Baseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return loop
}

// runLoop executes the standard rounds, advancing the probe day each
// round as a real daily measurement would.
func runLoop(t testing.TB, world *synth.World, loop *target.Loop) []target.RoundReport {
	t.Helper()
	var reports []target.RoundReport
	for r := 0; r < loopRounds; r++ {
		if r > 0 {
			if err := loop.AdvanceProbeDay(loopProbeDay0+r, topoFor(world, loopProbeDay0+r)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := loop.Round(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	return reports
}

func activeAddrs(t testing.TB, eng v6class.Engine, day int) []string {
	t.Helper()
	seq, err := eng.AddrsActiveOn(day)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for a := range seq {
		out = append(out, a.String())
	}
	slices.Sort(out)
	return out
}

// TestLoopClosedConformance is the acceptance suite of the measurement
// loop: parent immutability, successor exactness, alias detection with
// cooldown, hit-rate dominance over the uniform baseline, and cross-run
// determinism — the properties ISSUE 9 requires under -race.
func TestLoopClosedConformance(t *testing.T) {
	world, parent := loopWorld(t)
	var parentBefore bytes.Buffer
	if _, err := parent.WriteTo(&parentBefore); err != nil {
		t.Fatal(err)
	}

	loop := newLoop(t, world, parent)
	reports := runLoop(t, world, loop)

	// The parent engine is byte-identical after the whole loop.
	var parentAfter bytes.Buffer
	if _, err := parent.WriteTo(&parentAfter); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parentBefore.Bytes(), parentAfter.Bytes()) {
		t.Error("parent engine mutated by the loop")
	}

	// Each round: hits exist and the model's hit-rate strictly beats the
	// uniform baseline drawn from the same dense regions.
	for _, rep := range reports {
		t.Logf("round %d: regions=%d candidates=%d hits=%d rate=%.3f baseline=%d/%d rate=%.4f aliased=%v",
			rep.Round, rep.Regions, rep.Candidates, rep.Hits, rep.HitRate,
			rep.BaselineHits, rep.BaselineCandidates, rep.BaselineRate, rep.NewAliased)
		if rep.Hits == 0 {
			t.Errorf("round %d: no hits", rep.Round)
		}
		if rep.HitRate <= rep.BaselineRate {
			t.Errorf("round %d: model rate %.4f does not beat uniform baseline %.4f",
				rep.Round, rep.HitRate, rep.BaselineRate)
		}
	}

	// The injected aliased /64 is detected in round 0 and never again
	// reported new.
	if len(reports[0].NewAliased) != 1 || reports[0].NewAliased[0] != aliasedInjected {
		t.Errorf("round 0 NewAliased = %v, want [%v]", reports[0].NewAliased, aliasedInjected)
	}
	for _, rep := range reports[1:] {
		if len(rep.NewAliased) != 0 {
			t.Errorf("round %d re-detected aliased prefixes %v", rep.Round, rep.NewAliased)
		}
	}
	found := false
	for p := range loop.Detector().Aliased() {
		if p == aliasedInjected {
			found = true
		}
	}
	if !found {
		t.Error("detector does not remember the injected aliased prefix")
	}

	// During cooldown, generation never re-proposes addresses under the
	// aliased prefix (the phantom members are still in the census, so
	// only suppression prevents it).
	gen, err := target.NewGenerator(loop.Set(),
		target.WithDensity(v6class.DensityClass{N: 3, P: 116}),
		target.WithPer64(64),
		target.WithSuppress(func(a v6class.Addr) bool { return loop.Detector().Suppress(a, loop.Rounds()) }))
	if err != nil {
		t.Fatal(err)
	}
	for c := range gen.Candidates(1024) {
		if aliasedInjected.Contains(c.Addr) {
			t.Errorf("candidate %v proposed under aliased prefix during cooldown", c.Addr)
		}
	}
	// No hit was ever ingested under it either.
	for _, day := range []int{loopProbeDay0, loopProbeDay0 + 1, loopProbeDay0 + 2} {
		for _, s := range activeAddrs(t, loop.Engine(), day) {
			if aliasedInjected.Contains(v6class.MustParseAddr(s)) {
				t.Errorf("phantom hit %s ingested on day %d", s, day)
			}
		}
	}
}

// TestLoopSuccessorExactness verifies one generate→scan→ingest→freeze
// round: the new generation's probe-day actives are exactly the scan
// hits, layered over an untouched parent.
func TestLoopSuccessorExactness(t *testing.T) {
	world, parent := loopWorld(t)
	loop := newLoop(t, world, parent)
	rep, err := loop.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits == 0 {
		t.Fatal("round produced no hits")
	}
	if loop.Engine() == parent {
		t.Fatal("loop did not spawn a successor")
	}
	// Parent has no probe-day activity; successor has exactly the hits.
	if got := activeAddrs(t, parent, loopProbeDay0); len(got) != 0 {
		t.Fatalf("parent active on probe day: %v", got)
	}
	got := activeAddrs(t, loop.Engine(), loopProbeDay0)
	if len(got) != rep.Hits {
		t.Fatalf("successor probe-day actives = %d, want %d", len(got), rep.Hits)
	}
	// Every probe-day active is a genuinely new key: census grew by
	// exactly the hit count.
	pn, err := parent.NumKeys(v6class.Addresses)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := loop.Engine().NumKeys(v6class.Addresses)
	if err != nil {
		t.Fatal(err)
	}
	if sn-pn != rep.Hits {
		t.Fatalf("census grew by %d keys, want %d", sn-pn, rep.Hits)
	}
	if loop.Set().Len() != rep.CensusAddrs {
		t.Fatalf("report census size %d != set %d", rep.CensusAddrs, loop.Set().Len())
	}
}

// TestLoopDeterministic runs the whole loop twice from scratch and
// requires byte-identical candidate streams, hit sets, and reports
// (modulo the scheduling-dependent probe counters).
func TestLoopDeterministic(t *testing.T) {
	type run struct {
		reports    []target.RoundReport
		hits       [][]string
		candidates []string
	}
	do := func() run {
		world, parent := loopWorld(t)
		loop := newLoop(t, world, parent)
		var r run
		r.reports = runLoop(t, world, loop)
		for d := 0; d < loopRounds; d++ {
			r.hits = append(r.hits, activeAddrs(t, loop.Engine(), loopProbeDay0+d))
		}
		// The candidate stream of the next round, byte for byte.
		gen, err := target.NewGenerator(loop.Set(),
			target.WithSeed(99),
			target.WithDensity(v6class.DensityClass{N: 3, P: 116}),
			target.WithPer64(64))
		if err != nil {
			t.Fatal(err)
		}
		for c := range gen.Candidates(128) {
			r.candidates = append(r.candidates, c.Encode())
		}
		return r
	}
	a, b := do(), do()
	for i := range a.reports {
		ra, rb := a.reports[i], b.reports[i]
		// Probes/Suppressed can vary with worker scheduling around a
		// mid-scan detection; everything observable must not.
		ra.Probes, rb.Probes = 0, 0
		ra.Suppressed, rb.Suppressed = 0, 0
		if ra.Candidates != rb.Candidates || ra.Hits != rb.Hits || ra.HitRate != rb.HitRate ||
			ra.CensusAddrs != rb.CensusAddrs || ra.BaselineHits != rb.BaselineHits ||
			ra.BaselineCandidates != rb.BaselineCandidates ||
			!slices.Equal(ra.NewAliased, rb.NewAliased) {
			t.Errorf("round %d reports diverge:\n%+v\n%+v", i, ra, rb)
		}
	}
	for d := range a.hits {
		if !slices.Equal(a.hits[d], b.hits[d]) {
			t.Errorf("day %d hit sets diverge", loopProbeDay0+d)
		}
	}
	if !slices.Equal(a.candidates, b.candidates) {
		t.Error("candidate streams diverge")
	}
	if len(a.candidates) == 0 {
		t.Error("no candidates in determinism check")
	}
}
