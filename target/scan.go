package target

import (
	"context"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"v6class"
)

// ScanConfig tunes a Scan run.
type ScanConfig struct {
	// Workers bounds the probe worker pool. Default 8.
	Workers int
	// Rate caps probes per second across the whole pool; 0 means
	// unlimited (the simulation default).
	Rate float64
	// Detector, when non-nil, tallies hits per checked prefix, fires
	// alias checks at the detector's trigger, suppresses candidates under
	// known-aliased prefixes, and filters phantom hits from the result.
	Detector *AliasDetector
	// Round is the measurement round, the detector's cooldown clock.
	Round int
}

// ScanResult summarizes one scan.
type ScanResult struct {
	// Candidates is the number of candidates consumed from the stream.
	Candidates int
	// Probes is the number of candidate probes issued (alias-check probes
	// are counted separately via AliasChecks). It can vary with worker
	// scheduling when a mid-scan detection suppresses in-flight work;
	// Hits and NewAliased cannot.
	Probes int
	// Suppressed is the number of candidates skipped under aliased
	// prefixes.
	Suppressed int
	// AliasChecks is the number of alias checks fired (each issuing up to
	// the detector's K probes).
	AliasChecks int
	// Hits is the deduplicated, ascending list of answering candidates,
	// with hits under aliased prefixes removed. For a fixed (candidate
	// stream, Prober, detector seed) it is byte-identical across runs
	// regardless of worker count.
	Hits []v6class.Addr
	// NewAliased lists the prefixes first detected as aliased during this
	// scan, ascending.
	NewAliased []v6class.Prefix
}

// HitRate is Hits per candidate consumed.
func (r ScanResult) HitRate() float64 {
	if r.Candidates == 0 {
		return 0
	}
	return float64(len(r.Hits)) / float64(r.Candidates)
}

// Scan drives a candidate stream through the prober on a bounded worker
// pool: candidates fan out to Workers goroutines, a rate limiter paces
// the pool, a collector tallies hits and fires alias checks, and
// cancelling the context stops everything promptly (the partial result is
// returned with the context's error). The first Prober error aborts the
// scan.
func Scan(ctx context.Context, pr Prober, candidates iter.Seq[Candidate], cfg ScanConfig) (ScanResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var tick <-chan time.Time
	if cfg.Rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
		defer t.Stop()
		tick = t.C
	}

	var (
		probes   atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	before := make(map[v6class.Prefix]bool)
	if cfg.Detector != nil {
		for p := range cfg.Detector.Aliased() {
			before[p] = true
		}
	}

	work := make(chan Candidate, workers)
	hits := make(chan Candidate, workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				if tick != nil {
					select {
					case <-tick:
					case <-ctx.Done():
						return
					}
				}
				hit, err := pr.Probe(ctx, c.Addr)
				probes.Add(1)
				if err != nil {
					fail(err)
					return
				}
				if hit {
					select {
					case hits <- c:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}

	var (
		collected   []v6class.Addr
		aliasChecks int
	)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		tally := make(map[v6class.Prefix]int)
		for c := range hits {
			collected = append(collected, c.Addr)
			d := cfg.Detector
			if d == nil {
				continue
			}
			p := d.CheckPrefix(c.Addr)
			tally[p]++
			// Exactly one check per prefix per scan, fired when the
			// tally reaches the trigger — a function of the hit totals,
			// not of arrival order, so the checked set is deterministic.
			if tally[p] == d.Config().Trigger {
				aliasChecks++
				if _, err := d.Check(ctx, pr, c.Addr, cfg.Round); err != nil {
					fail(err)
					return
				}
			}
		}
	}()

	produced, suppressed := 0, 0
producer:
	for c := range candidates {
		produced++
		if d := cfg.Detector; d != nil && d.Suppress(c.Addr, cfg.Round) {
			suppressed++
			continue
		}
		select {
		case work <- c:
		case <-ctx.Done():
			break producer
		}
	}
	close(work)
	wg.Wait()
	close(hits)
	<-collectorDone

	if firstErr == nil {
		firstErr = ctx.Err()
	}

	res := ScanResult{
		Candidates:  produced,
		Probes:      int(probes.Load()),
		Suppressed:  suppressed,
		AliasChecks: aliasChecks,
	}
	var cover []v6class.Prefix
	if cfg.Detector != nil {
		for p := range cfg.Detector.Aliased() {
			cover = append(cover, p)
			if !before[p] {
				res.NewAliased = append(res.NewAliased, p)
			}
		}
	}
	for _, a := range collected {
		phantom := false
		for _, p := range cover {
			if p.Contains(a) {
				phantom = true
				break
			}
		}
		if !phantom {
			res.Hits = append(res.Hits, a)
		}
	}
	sort.Slice(res.Hits, func(i, j int) bool { return res.Hits[i].Less(res.Hits[j]) })
	res.Hits = dedupAddrs(res.Hits)
	return res, firstErr
}

func dedupAddrs(s []v6class.Addr) []v6class.Addr {
	out := s[:0]
	for i, a := range s {
		if i == 0 || a != s[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// HitsToLog batches scan hits into the aggregated daily-log form that
// Engine.AddDay / serve's ingest endpoint accept: one record per hit
// address, observed once, on the given study day.
func HitsToLog(day int, hits []v6class.Addr) v6class.DayLog {
	recs := make([]v6class.Record, len(hits))
	for i, a := range hits {
		recs[i] = v6class.Record{Addr: a, Hits: 1}
	}
	return v6class.DayLog{Day: day, Records: recs}
}
