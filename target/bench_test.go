package target_test

import (
	"context"
	"fmt"
	"testing"

	"v6class"
	"v6class/synth"
	"v6class/target"
)

// benchSet builds the standard benchmark population: one day of the
// small synthetic world, whose DHCP pool and client space give the model
// a realistic mix of dense and sparse regions.
func benchSet(b *testing.B) *v6class.AddressSet {
	b.Helper()
	world := synth.NewWorld(synth.Config{Seed: 11, Scale: 0.05, StudyDays: 16})
	eng, err := v6class.New(v6class.WithStudyDays(16))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.AddDays(world.Days(0, 1)); err != nil {
		b.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		b.Fatal(err)
	}
	set, err := eng.SpatialSet(v6class.Addresses, 0)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkTargetGenerate measures training a generator and drawing one
// full ranked candidate stream — the per-round model cost of the loop.
func BenchmarkTargetGenerate(b *testing.B) {
	set := benchSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := target.NewGenerator(set,
			target.WithDensity(v6class.DensityClass{N: 3, P: 116}),
			target.WithPer64(64))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for range gen.Candidates(256) {
			n++
		}
		if n == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkAliasDetect measures one full alias check: K pseudorandom
// probes under the /64 plus the verdict bookkeeping.
func BenchmarkAliasDetect(b *testing.B) {
	yes := target.ProberFunc(func(context.Context, v6class.Addr) (bool, error) { return true, nil })
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := target.NewAliasDetector(target.AliasConfig{K: 16, Seed: 7})
		a := v6class.MustParseAddr(fmt.Sprintf("2001:db8:%x::1", i%4096))
		if aliased, err := det.Check(ctx, yes, a, 0); err != nil || !aliased {
			b.Fatalf("Check = %v, %v", aliased, err)
		}
	}
}

// BenchmarkScanRound measures one generate→scan round through the worker
// pool against a cheap prober — the scheduler overhead per candidate.
func BenchmarkScanRound(b *testing.B) {
	set := benchSet(b)
	gen, err := target.NewGenerator(set,
		target.WithDensity(v6class.DensityClass{N: 3, P: 116}),
		target.WithPer64(64))
	if err != nil {
		b.Fatal(err)
	}
	pr := target.ProberFunc(func(_ context.Context, a v6class.Addr) (bool, error) {
		return a.Nybble(31)%2 == 0, nil
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := target.Scan(ctx, pr, gen.Candidates(256), target.ScanConfig{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.Probes == 0 {
			b.Fatal("no probes")
		}
	}
}
