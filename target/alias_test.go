package target_test

import (
	"context"
	"testing"

	"v6class"
	"v6class/target"
)

var (
	yes = target.ProberFunc(func(context.Context, v6class.Addr) (bool, error) { return true, nil })
	no  = target.ProberFunc(func(context.Context, v6class.Addr) (bool, error) { return false, nil })
)

func TestAliasDetectAndCooldown(t *testing.T) {
	det := target.NewAliasDetector(target.AliasConfig{K: 8, Cooldown: 3, Seed: 5})
	addr := v6class.MustParseAddr("2001:db8:0:aa::1")
	p64 := v6class.PrefixFrom(addr, 64)

	aliased, err := det.Check(context.Background(), yes, addr, 0)
	if err != nil || !aliased {
		t.Fatalf("Check(all-answer) = %v, %v; want true", aliased, err)
	}
	for round := 0; round < 3; round++ {
		if !det.Suppress(addr, round) {
			t.Errorf("round %d: aliased prefix not suppressed", round)
		}
		if !det.Suppress(p64.Last(), round) {
			t.Errorf("round %d: other addr under prefix not suppressed", round)
		}
	}
	if det.Suppress(addr, 3) {
		t.Error("suppression outlived cooldown")
	}
	if det.Suppress(v6class.MustParseAddr("2001:db8:0:bb::1"), 0) {
		t.Error("unrelated /64 suppressed")
	}
}

func TestAliasFailedCheckCooldown(t *testing.T) {
	det := target.NewAliasDetector(target.AliasConfig{K: 4, Cooldown: 5})
	addr := v6class.MustParseAddr("2001:db8::1")
	if aliased, _ := det.Check(context.Background(), no, addr, 0); aliased {
		t.Fatal("non-answering prefix marked aliased")
	}
	// Within cooldown the check does not repeat — even an all-answering
	// prober cannot flip the verdict yet.
	if aliased, _ := det.Check(context.Background(), yes, addr, 2); aliased {
		t.Fatal("re-checked within cooldown")
	}
	if aliased, _ := det.Check(context.Background(), yes, addr, 5); !aliased {
		t.Fatal("cooldown expiry did not allow a fresh check")
	}
}

func TestAliasProbeAddrsDeterministic(t *testing.T) {
	det := target.NewAliasDetector(target.AliasConfig{K: 16, Seed: 9})
	p := v6class.MustParsePrefix("2001:db8:1:2::/64")
	a1, a2 := det.ProbeAddrs(p), det.ProbeAddrs(p)
	if len(a1) != 16 {
		t.Fatalf("got %d probes, want 16", len(a1))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("probe set not deterministic")
		}
		if !p.Contains(a1[i]) {
			t.Errorf("probe %v outside %v", a1[i], p)
		}
	}
}

func TestAliasedEnumerationOrdered(t *testing.T) {
	det := target.NewAliasDetector(target.AliasConfig{K: 2})
	for _, s := range []string{"2001:db8:0:b::1", "2001:db8:0:a::1", "2001:db8:0:c::1"} {
		if _, err := det.Check(context.Background(), yes, v6class.MustParseAddr(s), 1); err != nil {
			t.Fatal(err)
		}
	}
	var prev v6class.Prefix
	n := 0
	for p, round := range det.Aliased() {
		if n > 0 && p.Cmp(prev) <= 0 {
			t.Errorf("enumeration not ascending: %v after %v", p, prev)
		}
		if round != 1 {
			t.Errorf("round = %d, want 1", round)
		}
		prev = p
		n++
	}
	if n != 3 {
		t.Fatalf("enumerated %d prefixes, want 3", n)
	}
}

func TestCollapseAliased(t *testing.T) {
	det := target.NewAliasDetector(target.AliasConfig{K: 2})
	if _, err := det.Check(context.Background(), yes, v6class.MustParseAddr("2001:db8:0:a::1"), 0); err != nil {
		t.Fatal(err)
	}
	p := v6class.MustParsePrefix("2001:db8:0:a::/64")
	logs := []v6class.DayLog{{Day: 3, Records: []v6class.Record{
		{Addr: v6class.MustParseAddr("2001:db8:0:a::1"), Hits: 2},
		{Addr: v6class.MustParseAddr("2001:db8:0:b::1"), Hits: 7},
		{Addr: v6class.MustParseAddr("2001:db8:0:a::9"), Hits: 3},
	}}}
	out := det.CollapseAliased(logs)
	if len(out) != 1 || len(out[0].Records) != 2 {
		t.Fatalf("collapsed to %+v, want 2 records", out)
	}
	if r := out[0].Records[0]; r.Addr != p.First() || r.Hits != 5 {
		t.Errorf("representative = %v/%d, want %v/5", r.Addr, r.Hits, p.First())
	}
	if r := out[0].Records[1]; r.Hits != 7 {
		t.Errorf("untouched record rewritten: %+v", r)
	}
	// Original logs are not mutated.
	if logs[0].Records[0].Hits != 2 || len(logs[0].Records) != 3 {
		t.Error("input logs mutated")
	}
}
