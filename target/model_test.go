package target_test

import (
	"slices"
	"testing"

	"v6class"
	"v6class/target"
)

// collect drains a candidate stream into its Encode lines.
func collect(t *testing.T, seq func(func(target.Candidate) bool)) []string {
	t.Helper()
	var out []string
	for c := range seq {
		out = append(out, c.Encode())
	}
	return out
}

// TestGeneratorConditionalGeneralization pins the Markov structure: from
// members 0x111, 0x211, 0x112 (sharing the middle-nybble context) the
// chain licenses exactly one unseen composition, 0x212 — cross-products
// appear only where contexts genuinely merge.
func TestGeneratorConditionalGeneralization(t *testing.T) {
	var set v6class.AddressSet
	for _, s := range []string{"2001:db8::111", "2001:db8::211", "2001:db8::112"} {
		set.Add(v6class.MustParseAddr(s))
	}
	gen, err := target.NewGenerator(&set,
		target.WithSeed(1),
		target.WithDensity(v6class.DensityClass{N: 3, P: 116}))
	if err != nil {
		t.Fatal(err)
	}
	var got []v6class.Addr
	for c := range gen.Candidates(100) {
		got = append(got, c.Addr)
		if c.Score >= 0 {
			t.Errorf("candidate %v score %v: want < 0", c.Addr, c.Score)
		}
	}
	want := []v6class.Addr{v6class.MustParseAddr("2001:db8::212")}
	if !slices.Equal(got, want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
}

func TestGeneratorRankedAndDeterministic(t *testing.T) {
	var set v6class.AddressSet
	// Two dense runs in different /64s, each with enough 3-layer structure
	// to generalize.
	for _, base := range []string{"2001:db8:0:1::", "2001:db8:0:2::a000"} {
		b := v6class.MustParseAddr(base)
		for _, off := range []uint64{0x111, 0x211, 0x112, 0x121, 0x221} {
			set.Add(b.WithIID(b.IID() | off))
		}
	}
	gen, err := target.NewGenerator(&set,
		target.WithSeed(7),
		target.WithDensity(v6class.DensityClass{N: 3, P: 112}))
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Regions()) == 0 {
		t.Fatal("no regions trained")
	}

	first := collect(t, gen.Candidates(32))
	if len(first) == 0 {
		t.Fatal("no candidates generated")
	}
	// Re-iteration and a second identically-configured generator replay
	// the identical stream.
	if again := collect(t, gen.Candidates(32)); !slices.Equal(first, again) {
		t.Fatalf("re-iteration diverged:\n%v\n%v", first, again)
	}
	gen2, err := target.NewGenerator(&set,
		target.WithSeed(7),
		target.WithDensity(v6class.DensityClass{N: 3, P: 112}))
	if err != nil {
		t.Fatal(err)
	}
	if other := collect(t, gen2.Candidates(32)); !slices.Equal(first, other) {
		t.Fatalf("fresh generator diverged:\n%v\n%v", first, other)
	}

	// Ranked: scores non-increasing; candidates unseen and in-region.
	prev := 0.0
	for i, line := range first {
		c, err := target.DecodeCandidate(line)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && c.Score > prev {
			t.Errorf("stream not ranked: %v after %v", c.Score, prev)
		}
		prev = c.Score
		if set.Trie().Count(v6class.PrefixFrom(c.Addr, 128)) > 0 {
			t.Errorf("candidate %v already in census", c.Addr)
		}
		if !c.Region.Contains(c.Addr) {
			t.Errorf("candidate %v outside its region %v", c.Addr, c.Region)
		}
	}
}

func TestGeneratorBudgetAndPer64(t *testing.T) {
	var set v6class.AddressSet
	b := v6class.MustParseAddr("2001:db8::")
	for _, off := range []uint64{0x111, 0x211, 0x112, 0x121, 0x221, 0x122} {
		set.Add(b.WithIID(off))
	}
	gen, err := target.NewGenerator(&set,
		target.WithDensity(v6class.DensityClass{N: 3, P: 112}))
	if err != nil {
		t.Fatal(err)
	}
	all := collect(t, gen.Candidates(1000))
	if len(all) < 2 {
		t.Skipf("model generalized to %d candidates; need 2+ for budget test", len(all))
	}
	if got := collect(t, gen.Candidates(1)); len(got) != 1 || got[0] != all[0] {
		t.Fatalf("budget 1: got %v, want [%v]", got, all[0])
	}
	capped, err := target.NewGenerator(&set,
		target.WithDensity(v6class.DensityClass{N: 3, P: 112}),
		target.WithPer64(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, capped.Candidates(1000)); len(got) != 1 {
		t.Fatalf("per-/64 cap 1: got %d candidates in one /64, want 1", len(got))
	}
}

func TestGeneratorSuppress(t *testing.T) {
	var set v6class.AddressSet
	b := v6class.MustParseAddr("2001:db8::")
	for _, off := range []uint64{0x111, 0x211, 0x112} {
		set.Add(b.WithIID(off))
	}
	gen, err := target.NewGenerator(&set,
		target.WithDensity(v6class.DensityClass{N: 3, P: 116}),
		target.WithSuppress(func(v6class.Addr) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, gen.Candidates(100)); len(got) != 0 {
		t.Fatalf("suppress-all still yielded %v", got)
	}
}

func TestUniform(t *testing.T) {
	var set v6class.AddressSet
	b := v6class.MustParseAddr("2001:db8::")
	for i := uint64(0); i < 10; i++ {
		set.Add(b.WithIID(i))
	}
	region := v6class.MustParsePrefix("2001:db8::/120")
	seq := target.Take(target.Uniform([]v6class.Prefix{region}, &set, 99), 50)
	first := collect(t, seq)
	if len(first) != 50 {
		t.Fatalf("got %d candidates, want 50", len(first))
	}
	if again := collect(t, seq); !slices.Equal(first, again) {
		t.Fatal("uniform stream not re-iterable deterministically")
	}
	seen := make(map[string]bool)
	for _, line := range first {
		c, err := target.DecodeCandidate(line)
		if err != nil {
			t.Fatal(err)
		}
		if !region.Contains(c.Addr) {
			t.Errorf("%v outside region", c.Addr)
		}
		if set.Trie().Count(v6class.PrefixFrom(c.Addr, 128)) > 0 {
			t.Errorf("%v is a census member", c.Addr)
		}
		if seen[line] {
			t.Errorf("duplicate candidate %v", c.Addr)
		}
		seen[line] = true
	}
	// A small region exhausts: /126 minus nothing = 4 addresses total.
	tiny := target.Uniform([]v6class.Prefix{v6class.MustParsePrefix("2001:db8:1::/126")}, nil, 1)
	if got := collect(t, tiny); len(got) != 4 {
		t.Fatalf("tiny region yielded %d, want 4", len(got))
	}
}

func TestCandidateCodecRoundTrip(t *testing.T) {
	c := target.Candidate{
		Addr:   v6class.MustParseAddr("2a00:1450:100:64::1234"),
		Region: v6class.MustParsePrefix("2a00:1450:100:64::1000/116"),
		Score:  -3.1415926535,
	}
	got, err := target.DecodeCandidate(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}
	for _, bad := range []string{"", "x", "2001:db8::1 nope 0", "2001:db8::1 2001:db8::/64 zz", "a b c d"} {
		if _, err := target.DecodeCandidate(bad); err == nil {
			t.Errorf("DecodeCandidate(%q): want error", bad)
		}
	}
}
