package target

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"iter"
	"math"
	"sort"

	"v6class"
)

// GenOption configures a Generator.
type GenOption func(*genConfig)

type genConfig struct {
	seed       uint64
	class      v6class.DensityClass
	regions    []v6class.PrefixCount
	per64      int
	maxRegions int
	suppress   func(v6class.Addr) bool
}

// WithSeed seeds the generator's tie-breaking. Streams are fully
// deterministic for a fixed seed; different seeds reorder candidates of
// equal model probability.
func WithSeed(seed uint64) GenOption { return func(c *genConfig) { c.seed = seed } }

// WithDensity selects the density class whose least-specific dense
// prefixes become the model's regions. Default is 3 @ /120, a Table 3
// class narrow enough to sweep and wide enough to generalize.
func WithDensity(class v6class.DensityClass) GenOption {
	return func(c *genConfig) { c.class = class }
}

// WithRegions overrides region discovery with an explicit dense-prefix
// set (e.g. a DensityResult's Prefixes from an earlier sweep). Counts are
// ignored; membership is re-derived from the training set.
func WithRegions(prefixes []v6class.PrefixCount) GenOption {
	return func(c *genConfig) { c.regions = append([]v6class.PrefixCount(nil), prefixes...) }
}

// WithPer64 caps the candidates emitted under any single /64 — the
// fairness cap that keeps one dense delegation from monopolizing the
// probe budget. Default 16; <= 0 means unlimited.
func WithPer64(k int) GenOption { return func(c *genConfig) { c.per64 = k } }

// WithMaxRegions bounds the number of (largest-membership) regions the
// model trains on. Default 64; <= 0 means unlimited.
func WithMaxRegions(n int) GenOption { return func(c *genConfig) { c.maxRegions = n } }

// WithSuppress installs a candidate filter, typically
// AliasDetector.Suppress: candidates for which fn returns true are
// skipped without consuming budget.
func WithSuppress(fn func(v6class.Addr) bool) GenOption {
	return func(c *genConfig) { c.suppress = fn }
}

// region is one dense prefix's trained Markov chain: layer i models the
// nybble at position start+i, conditioned on the previous nybble's value
// (layer 0 conditions on the fixed virtual state 0).
type region struct {
	prefix v6class.Prefix
	start  int // first modeled nybble position
	layers int // modeled positions: 32 - start
	count  uint64
	prior  float64           // log2 P(region)
	counts [][16][16]uint32  // transition counts per layer
	marg   [][16]uint32      // per-layer marginal value counts
	logp   [][16][16]float64 // log2 smoothed conditional probabilities
	best   [][16]float64     // best completion after layer i in state v
	root   float64           // best full-path log2 probability
}

// Generator is a trained candidate model. Train once with NewGenerator,
// then draw any number of independent ranked streams with Candidates.
// A Generator is immutable after construction and safe for concurrent use
// (the suppress callback must then be concurrency-safe too).
type Generator struct {
	cfg     genConfig
	set     *v6class.AddressSet
	regions []*region
}

// NewGenerator trains a per-nybble conditional model on set's dense
// regions. The set is retained (not copied) for census-membership
// exclusion and must not be mutated while the Generator is in use — the
// sets built by Engine.SpatialSet are immutable by contract already.
func NewGenerator(set *v6class.AddressSet, opts ...GenOption) (*Generator, error) {
	if set == nil {
		return nil, fmt.Errorf("target: NewGenerator requires a non-nil address set")
	}
	cfg := genConfig{class: v6class.DensityClass{N: 3, P: 120}, per64: 16, maxRegions: 64}
	for _, o := range opts {
		o(&cfg)
	}
	g := &Generator{cfg: cfg, set: set}

	prefixes := cfg.regions
	if prefixes == nil {
		prefixes = set.DenseLeastSpecific(cfg.class).Prefixes
	}
	g.regions = buildRegions(prefixes, cfg.maxRegions)
	g.train()
	return g, nil
}

// buildRegions normalizes a dense-prefix list into disjoint, generatable,
// ascending regions: sorted, nested duplicates dropped, /125+ prefixes
// (nothing left to model) dropped, then capped to the n largest.
func buildRegions(prefixes []v6class.PrefixCount, maxRegions int) []*region {
	sorted := append([]v6class.PrefixCount(nil), prefixes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Prefix.Cmp(sorted[j].Prefix) < 0 })
	var out []*region
	counts := make(map[*region]uint64, len(sorted))
	for _, pc := range sorted {
		if pc.Prefix.Bits() > 124 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].prefix.ContainsPrefix(pc.Prefix) {
			continue
		}
		start := pc.Prefix.Bits() / 4
		r := &region{prefix: pc.Prefix, start: start, layers: 32 - start}
		counts[r] = pc.Count
		out = append(out, r)
	}
	if maxRegions > 0 && len(out) > maxRegions {
		// Keep the maxRegions most-populated regions, then restore
		// ascending prefix order. Count here is the caller-supplied dense
		// count; training recomputes exact membership.
		sort.SliceStable(out, func(i, j int) bool { return counts[out[i]] > counts[out[j]] })
		out = out[:maxRegions]
		sort.Slice(out, func(i, j int) bool { return out[i].prefix.Cmp(out[j].prefix) < 0 })
	}
	return out
}

// train walks the set once in address order, routing each /128 member to
// its region (regions are disjoint and ascending, so a single cursor
// suffices) and accumulating nybble-transition counts, then finalizes
// each region's probability tables.
func (g *Generator) train() {
	for _, r := range g.regions {
		r.counts = make([][16][16]uint32, r.layers)
	}
	i := 0
	g.set.Trie().Walk(func(pc v6class.PrefixCount) bool {
		if pc.Prefix.Bits() != 128 {
			return true
		}
		a := pc.Prefix.Addr()
		for i < len(g.regions) && g.regions[i].prefix.Last().Less(a) {
			i++
		}
		if i == len(g.regions) {
			return false
		}
		if r := g.regions[i]; r.prefix.Contains(a) {
			r.count++
			prev := uint8(0)
			for l := 0; l < r.layers; l++ {
				v := a.Nybble(r.start + l)
				if r.counts[l][prev][v] != math.MaxUint32 {
					r.counts[l][prev][v]++
				}
				prev = v
			}
		}
		return true
	})

	var total uint64
	live := g.regions[:0]
	for _, r := range g.regions {
		if r.count > 0 {
			total += r.count
			live = append(live, r)
		}
	}
	g.regions = live
	for _, r := range g.regions {
		r.prior = math.Log2(float64(r.count) / float64(total))
		r.finalize()
	}
}

// finalize converts counts to smoothed log2 conditionals and computes the
// exact best-completion bound per (layer, state) — the admissible
// heuristic that lets candidate enumeration emit strictly by descending
// probability without materializing the path space.
//
// Smoothing interpolates each conditional row with the layer's marginal
// distribution: P(v|prev) = (c[prev][v] + m[v]/Σm) / (Σc[prev] + 1). A
// pure chain cannot generalize when few nybble layers vary — the observed
// transition pairs then ARE the members — whereas the marginal mix admits
// every (prev, v) whose value occurs anywhere in the layer, ranking unseen
// combinations below seen ones. Values never observed at a layer stay
// impossible, which keeps each region's path space finite.
func (r *region) finalize() {
	neg := math.Inf(-1)
	r.logp = make([][16][16]float64, r.layers)
	r.marg = make([][16]uint32, r.layers)
	for l := range r.counts {
		var layerTotal uint64
		for prev := 0; prev < 16; prev++ {
			for v := 0; v < 16; v++ {
				c := r.counts[l][prev][v]
				r.marg[l][v] += c
				layerTotal += uint64(c)
			}
		}
		for prev := 0; prev < 16; prev++ {
			var rowTotal uint64
			for v := 0; v < 16; v++ {
				rowTotal += uint64(r.counts[l][prev][v])
			}
			for v := 0; v < 16; v++ {
				if r.marg[l][v] == 0 {
					r.logp[l][prev][v] = neg
					continue
				}
				mix := float64(r.marg[l][v]) / float64(layerTotal)
				r.logp[l][prev][v] = math.Log2(
					(float64(r.counts[l][prev][v]) + mix) / (float64(rowTotal) + 1))
			}
		}
	}
	r.best = make([][16]float64, r.layers)
	for v := 0; v < 16; v++ {
		r.best[r.layers-1][v] = 0
	}
	for l := r.layers - 2; l >= 0; l-- {
		for v := 0; v < 16; v++ {
			b := neg
			for nv := 0; nv < 16; nv++ {
				if r.marg[l+1][nv] == 0 {
					continue
				}
				if f := r.logp[l+1][v][nv] + r.best[l+1][nv]; f > b {
					b = f
				}
			}
			r.best[l][v] = b
		}
	}
	r.root = neg
	for v := 0; v < 16; v++ {
		if r.marg[0][v] == 0 {
			continue
		}
		if f := r.logp[0][0][v] + r.best[0][v]; f > r.root {
			r.root = f
		}
	}
}

// Regions returns the trained dense regions in ascending order — the
// prefix set a uniform baseline should draw from for a fair comparison.
func (g *Generator) Regions() []v6class.Prefix {
	out := make([]v6class.Prefix, len(g.regions))
	for i, r := range g.regions {
		out[i] = r.prefix
	}
	return out
}

// pathNode is one partial path through a region's trellis.
type pathNode struct {
	f     float64 // g + exact best completion: the A* priority
	g     float64 // log2 probability of the filled layers
	addr  v6class.Addr
	depth int
	last  uint8
}

// pathHeap is a max-heap on f with deterministic seeded tie-breaking.
type pathHeap struct {
	nodes []pathNode
	seed  uint64
}

func (h *pathHeap) Len() int { return len(h.nodes) }
func (h *pathHeap) Less(i, j int) bool {
	a, b := h.nodes[i], h.nodes[j]
	if a.f != b.f {
		return a.f > b.f
	}
	ha := addrHash(h.seed, a.addr) ^ splitmix64(uint64(a.depth))
	hb := addrHash(h.seed, b.addr) ^ splitmix64(uint64(b.depth))
	if ha != hb {
		return ha < hb
	}
	return a.addr.Less(b.addr)
}
func (h *pathHeap) Swap(i, j int) { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *pathHeap) Push(x any)    { h.nodes = append(h.nodes, x.(pathNode)) }
func (h *pathHeap) Pop() (x any) {
	n := len(h.nodes) - 1
	x = h.nodes[n]
	h.nodes = h.nodes[:n]
	return
}

// regionStream enumerates one region's full paths in descending g order
// via best-first search; best[][] is exact, so the first completion popped
// is the global best remaining.
type regionStream struct {
	r    *region
	h    pathHeap
	done bool
}

func newRegionStream(r *region, seed uint64) *regionStream {
	s := &regionStream{r: r, h: pathHeap{seed: seed}}
	s.h.nodes = append(s.h.nodes, pathNode{f: r.root, addr: r.prefix.First()})
	if math.IsInf(r.root, -1) {
		s.done = true
	}
	return s
}

// next returns the region's next-most-probable address, or ok=false when
// the region's observed transition space is exhausted.
func (s *regionStream) next() (v6class.Addr, float64, bool) {
	for !s.done && s.h.Len() > 0 {
		n := heap.Pop(&s.h).(pathNode)
		if n.depth == s.r.layers {
			return n.addr, n.g, true
		}
		for v := uint8(0); v < 16; v++ {
			if s.r.marg[n.depth][v] == 0 {
				continue
			}
			g := n.g + s.r.logp[n.depth][n.last][v]
			heap.Push(&s.h, pathNode{
				f:     g + s.r.best[n.depth][v],
				g:     g,
				addr:  setNybble(n.addr, s.r.start+n.depth, v),
				depth: n.depth + 1,
				last:  v,
			})
		}
	}
	s.done = true
	return v6class.Addr{}, 0, false
}

// Candidates returns the ranked candidate stream: up to budget addresses
// not in the training census, highest model probability (region prior +
// path) first, per-/64 fairness cap applied, suppressed candidates
// skipped. The Seq is re-iterable; every iteration replays the identical
// stream from the start.
func (g *Generator) Candidates(budget int) iter.Seq[Candidate] {
	return func(yield func(Candidate) bool) {
		if budget <= 0 || len(g.regions) == 0 {
			return
		}
		streams := make([]*regionStream, len(g.regions))
		heads := make([]Candidate, len(g.regions))
		ok := make([]bool, len(g.regions))
		per64 := make(map[uint64]int)

		// advance refills stream i's head with the next candidate that
		// survives census exclusion, suppression, and the fairness cap.
		advance := func(i int) {
			s := streams[i]
			r := g.regions[i]
			for {
				a, lp, more := s.next()
				if !more {
					ok[i] = false
					return
				}
				if g.set.Trie().Count(v6class.PrefixFrom(a, 128)) > 0 {
					continue
				}
				if g.cfg.suppress != nil && g.cfg.suppress(a) {
					continue
				}
				if g.cfg.per64 > 0 && per64[a.NetworkID()] >= g.cfg.per64 {
					if r.prefix.Bits() >= 64 {
						// The whole region lies inside the capped /64.
						ok[i] = false
						return
					}
					continue
				}
				heads[i] = Candidate{Addr: a, Region: r.prefix, Score: r.prior + lp}
				ok[i] = true
				return
			}
		}
		for i, r := range g.regions {
			streams[i] = newRegionStream(r, g.cfg.seed)
			advance(i)
		}

		for emitted := 0; emitted < budget; emitted++ {
			best := -1
			for i := range heads {
				if !ok[i] {
					continue
				}
				if best == -1 || candidateLess(g.cfg.seed, heads[best], heads[i]) {
					best = i
				}
			}
			if best == -1 {
				return
			}
			c := heads[best]
			per64[c.Addr.NetworkID()]++
			if !yield(c) {
				return
			}
			advance(best)
		}
	}
}

// candidateLess reports whether b outranks a: higher score first, seeded
// hash then address value breaking ties.
func candidateLess(seed uint64, a, b Candidate) bool {
	if a.Score != b.Score {
		return b.Score > a.Score
	}
	ha, hb := addrHash(seed, a.Addr), addrHash(seed, b.Addr)
	if ha != hb {
		return hb < ha
	}
	return b.Addr.Less(a.Addr)
}

// Uniform is the IPv4-style baseline the paper argues against: addresses
// drawn uniformly at random from the same dense regions, deduplicated,
// with census members excluded when exclude is non-nil. The stream is
// deterministic for a seed and re-iterable; it ends when the regions'
// space is effectively exhausted (4096 consecutive collisions).
func Uniform(regions []v6class.Prefix, exclude *v6class.AddressSet, seed uint64) iter.Seq[Candidate] {
	weights := make([]float64, len(regions))
	var total float64
	for i, p := range regions {
		weights[i] = math.Exp2(float64(128 - p.Bits()))
		total += weights[i]
	}
	score := -math.Log2(total)
	return func(yield func(Candidate) bool) {
		if total == 0 {
			return
		}
		state := splitmix64(seed ^ 0xa5a5a5a5a5a5a5a5)
		next := func() uint64 { state = splitmix64(state); return state }
		seen := make(map[v6class.Addr]bool)
		for misses := 0; misses < 4096; {
			// Weighted region pick, then uniform host bits within it.
			x := float64(next()>>11) / (1 << 53) * total
			ri := 0
			for ri < len(regions)-1 && x >= weights[ri] {
				x -= weights[ri]
				ri++
			}
			p := regions[ri]
			hi, lo := p.First().NetworkID(), p.First().IID()
			host := 128 - p.Bits()
			switch {
			case host >= 64:
				lo = next()
				if host > 64 {
					hi |= next() & (1<<uint(host-64) - 1)
				}
			case host > 0:
				lo |= next() & (1<<uint(host) - 1)
			}
			var b [16]byte
			binary.BigEndian.PutUint64(b[:8], hi)
			binary.BigEndian.PutUint64(b[8:], lo)
			a := v6class.AddrFrom16(b)
			if seen[a] || (exclude != nil && exclude.Trie().Count(v6class.PrefixFrom(a, 128)) > 0) {
				misses++
				continue
			}
			misses = 0
			seen[a] = true
			if !yield(Candidate{Addr: a, Region: p, Score: score}) {
				return
			}
		}
	}
}

// Take caps a candidate stream at n elements; like the model's own budget,
// it composes with any Seq and stays re-iterable.
func Take(seq iter.Seq[Candidate], n int) iter.Seq[Candidate] {
	return func(yield func(Candidate) bool) {
		if n <= 0 {
			return
		}
		left := n
		for c := range seq {
			if !yield(c) {
				return
			}
			if left--; left == 0 {
				return
			}
		}
	}
}
