package target_test

import (
	"context"
	"slices"
	"strings"
	"testing"

	"v6class"
	"v6class/dnssim"
	"v6class/probe"
	"v6class/synth"
	"v6class/target"
)

// TestGeneratorDrivesPTRHarvest is the Section 6.2.3 interplay: PTR
// sweeps over generator-proposed candidates harvest more distinct names —
// including names of hosts never observed active — than a uniform-random
// sweep of the same dense regions with the same query budget. The DHCPv6
// department publishes PTR records for its whole pool while the census
// only ever sees the active subset, so a model that concentrates probes
// inside the pool finds the silent hosts' names; uniform probing of the
// surrounding space mostly queries NXDOMAIN.
func TestGeneratorDrivesPTRHarvest(t *testing.T) {
	world := synth.NewWorld(synth.Config{Seed: 11, Scale: 0.05, StudyDays: 16})
	eng, err := v6class.New(v6class.WithStudyDays(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDays(world.Days(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	set, err := eng.SpatialSet(v6class.Addresses, 0)
	if err != nil {
		t.Fatal(err)
	}
	zone := dnssim.NewZone(probe.NewTopology(world, 0))

	const budget = 256
	gen, err := target.NewGenerator(set,
		target.WithSeed(11),
		target.WithDensity(v6class.DensityClass{N: 3, P: 116}),
		target.WithPer64(budget))
	if err != nil {
		t.Fatal(err)
	}

	// Scan both candidate streams through the zone as the Prober: a hit
	// is an existing PTR record, so the hit set is the harvestable set.
	harvest := func(cands func(func(target.Candidate) bool)) []string {
		res, err := target.Scan(context.Background(), zone, cands, target.ScanConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return zone.HarvestAddrs(res.Hits)
	}
	modelNames := harvest(gen.Candidates(budget))
	uniformNames := harvest(target.Take(target.Uniform(gen.Regions(), set, 11), budget))

	if len(modelNames) <= len(uniformNames) {
		t.Errorf("model harvested %d names, uniform %d; want model strictly ahead",
			len(modelNames), len(uniformNames))
	}

	// The candidates exclude the census, so every harvested name belongs
	// to an address never observed active — the paper's point that dense
	// regions hold names beyond the active subset. The department pool
	// must contribute some of them.
	known := zone.HarvestAddrs(slices.Collect(func(yield func(v6class.Addr) bool) {
		set.Trie().Walk(func(pc v6class.PrefixCount) bool {
			if pc.Prefix.Bits() == 128 && !yield(pc.Prefix.Addr()) {
				return false
			}
			return true
		})
	}))
	fresh := 0
	dhcp := false
	for _, name := range modelNames {
		if !slices.Contains(known, name) {
			fresh++
			if strings.HasPrefix(name, "dhcpv6-") {
				dhcp = true
			}
		}
	}
	if fresh == 0 {
		t.Error("model harvest found no names beyond the census's own")
	}
	if !dhcp {
		t.Errorf("no silent dhcpv6-* host names among %d fresh names", fresh)
	}
}
