package target

import (
	"context"
	"fmt"

	"v6class"
)

// LoopConfig configures a measurement loop.
type LoopConfig struct {
	// Seed derives everything pseudorandom: candidate tie-breaking, alias
	// probes, the uniform baseline. Same seed, same Prober, same parent
	// census → byte-identical rounds.
	Seed uint64
	// Budget is the candidate budget per round. Default 1024.
	Budget int
	// Density is the dense class defining the model's regions. Default
	// 3 @ /120.
	Density v6class.DensityClass
	// Per64 is the per-/64 fairness cap on generation. Default 16.
	Per64 int
	// Days is the day selection defining the training population. The
	// ProbeDay is appended automatically if absent — without it, scan
	// hits could never feed back into the model.
	Days []int
	// ProbeDay is the study day scan hits are recorded under. Pick a day
	// inside the study period but beyond the parent's ingested window so
	// each generation's delta is exactly its scan hits.
	ProbeDay int
	// Workers and Rate pass through to the scan scheduler.
	Workers int
	Rate    float64
	// Alias configures the detector; a zero Seed inherits Seed.
	Alias AliasConfig
	// Baseline, when set, scans an equal budget of uniform-random
	// candidates from the same dense regions each round and reports its
	// hit-rate alongside. The baseline gets a fresh alias detector each
	// round (so its phantom hits are filtered the same way, but the
	// loop's detector state is never perturbed): the two scans differ
	// only in generation policy.
	Baseline bool
}

// RoundReport summarizes one generate → scan → ingest → freeze round.
type RoundReport struct {
	Round      int
	Regions    int
	Candidates int
	Probes     int
	Suppressed int
	Hits       int
	HitRate    float64
	NewAliased []v6class.Prefix
	// CensusAddrs is the training population size after ingesting the
	// round's hits.
	CensusAddrs int
	// Baseline results are zero unless LoopConfig.Baseline is set.
	BaselineCandidates int
	BaselineHits       int
	BaselineRate       float64
}

// Loop runs the closed measurement loop over a frozen census: each Round
// trains a Generator on the current population, scans its ranked
// candidates through the Prober, ingests the hits into a Successor
// generation, freezes it, and extends the training set incrementally with
// SpatialSetFrom — so round N+1's model knows what round N discovered.
// The parent engine is never mutated; it keeps serving reads while the
// loop grows new generations beside it. Not safe for concurrent use.
type Loop struct {
	cfg   LoopConfig
	pr    Prober
	eng   v6class.Engine
	det   *AliasDetector
	set   *v6class.AddressSet
	round int
}

// NewLoop validates the configuration and builds the initial training set
// from parent, which must be a frozen Engine constructed by v6class (the
// Successor requirement).
func NewLoop(parent v6class.Engine, pr Prober, cfg LoopConfig) (*Loop, error) {
	if parent == nil || pr == nil {
		return nil, fmt.Errorf("target: NewLoop requires an engine and a prober")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 1024
	}
	if cfg.Density == (v6class.DensityClass{}) {
		cfg.Density = v6class.DensityClass{N: 3, P: 120}
	}
	if cfg.Per64 == 0 {
		cfg.Per64 = 16
	}
	if cfg.ProbeDay < 0 || cfg.ProbeDay >= parent.StudyDays() {
		return nil, fmt.Errorf("target: ProbeDay %d outside study period [0, %d)", cfg.ProbeDay, parent.StudyDays())
	}
	hasProbeDay := false
	for _, d := range cfg.Days {
		if d == cfg.ProbeDay {
			hasProbeDay = true
			break
		}
	}
	if !hasProbeDay {
		cfg.Days = append(append([]int(nil), cfg.Days...), cfg.ProbeDay)
	}
	if cfg.Alias.Seed == 0 {
		cfg.Alias.Seed = cfg.Seed
	}
	set, err := parent.SpatialSet(v6class.Addresses, cfg.Days...)
	if err != nil {
		return nil, err
	}
	return &Loop{cfg: cfg, pr: pr, eng: parent, det: NewAliasDetector(cfg.Alias), set: set}, nil
}

// Engine returns the current generation: the original parent before any
// hits, afterwards the latest frozen successor.
func (l *Loop) Engine() v6class.Engine { return l.eng }

// Detector returns the loop's alias detector (shared across rounds, so
// cooldowns span rounds).
func (l *Loop) Detector() *AliasDetector { return l.det }

// Set returns the current training population.
func (l *Loop) Set() *v6class.AddressSet { return l.set }

// Rounds returns the number of completed rounds.
func (l *Loop) Rounds() int { return l.round }

// AdvanceProbeDay moves the loop to a new measurement day: subsequent
// rounds record hits under day and probe through pr (typically a fresh
// probe.NewTopology for that day). The day joins the training selection;
// the incremental SpatialSetFrom extension stays exact because days
// beyond the parent's ingested window only ever gain activity through
// the loop's own ingests, so every newly qualifying key is in the
// successor's delta.
func (l *Loop) AdvanceProbeDay(day int, pr Prober) error {
	if pr == nil {
		return fmt.Errorf("target: AdvanceProbeDay requires a prober")
	}
	if day < 0 || day >= l.eng.StudyDays() {
		return fmt.Errorf("target: probe day %d outside study period [0, %d)", day, l.eng.StudyDays())
	}
	l.pr = pr
	l.cfg.ProbeDay = day
	for _, d := range l.cfg.Days {
		if d == day {
			return nil
		}
	}
	l.cfg.Days = append(l.cfg.Days, day)
	return nil
}

// Round runs one generate → scan → ingest → freeze cycle and reports it.
// A round with zero hits skips the ingest (no successor is spawned for
// nothing); the loop state still advances.
func (l *Loop) Round(ctx context.Context) (RoundReport, error) {
	round := l.round
	roundSeed := splitmix64(l.cfg.Seed ^ (uint64(round)+1)*0x9e3779b97f4a7c15)
	// Suppression is a snapshot of the detector at round start, not a live
	// closure: scan workers detect aliases mid-round, and a live predicate
	// would make the candidate stream's length depend on worker scheduling.
	// Candidates that slip past the snapshot are still caught by the scan's
	// own live check (counted in the report's Suppressed).
	gen, err := NewGenerator(l.set,
		WithSeed(roundSeed),
		WithDensity(l.cfg.Density),
		WithPer64(l.cfg.Per64),
		WithSuppress(l.det.SuppressSnapshot(round)),
	)
	if err != nil {
		return RoundReport{}, err
	}
	res, err := Scan(ctx, l.pr, gen.Candidates(l.cfg.Budget), ScanConfig{
		Workers:  l.cfg.Workers,
		Rate:     l.cfg.Rate,
		Detector: l.det,
		Round:    round,
	})
	if err != nil {
		return RoundReport{}, err
	}
	rep := RoundReport{
		Round:      round,
		Regions:    len(gen.Regions()),
		Candidates: res.Candidates,
		Probes:     res.Probes,
		Suppressed: res.Suppressed,
		Hits:       len(res.Hits),
		HitRate:    res.HitRate(),
		NewAliased: res.NewAliased,
	}
	if l.cfg.Baseline {
		base, err := Scan(ctx, l.pr,
			Take(Uniform(gen.Regions(), l.set, roundSeed), l.cfg.Budget),
			ScanConfig{Workers: l.cfg.Workers, Rate: l.cfg.Rate,
				Detector: NewAliasDetector(l.cfg.Alias), Round: round})
		if err != nil {
			return RoundReport{}, err
		}
		rep.BaselineCandidates = base.Candidates
		rep.BaselineHits = len(base.Hits)
		rep.BaselineRate = base.HitRate()
	}
	if len(res.Hits) > 0 {
		succ, err := v6class.Successor(l.eng)
		if err != nil {
			return RoundReport{}, err
		}
		if err := succ.AddDay(HitsToLog(l.cfg.ProbeDay, res.Hits)); err != nil {
			return RoundReport{}, err
		}
		if err := succ.Freeze(); err != nil {
			return RoundReport{}, err
		}
		set, err := succ.SpatialSetFrom(l.set, v6class.Addresses, l.cfg.Days...)
		if err != nil {
			return RoundReport{}, err
		}
		l.eng, l.set = succ, set
	}
	rep.CensusAddrs = l.set.Len()
	l.round++
	return rep, nil
}

// Run executes n rounds, stopping early on error or context cancellation.
func (l *Loop) Run(ctx context.Context, n int) ([]RoundReport, error) {
	reports := make([]RoundReport, 0, n)
	for i := 0; i < n; i++ {
		rep, err := l.Round(ctx)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
