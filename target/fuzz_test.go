package target_test

import (
	"testing"

	"v6class"
	"v6class/target"
)

// FuzzCandidateCodec fuzzes the candidate wire codec: arbitrary input
// must never panic the decoder, and every successfully decoded candidate
// must round-trip byte-identically through Encode.
func FuzzCandidateCodec(f *testing.F) {
	a := v6class.MustParseAddr("2001:db8::212")
	f.Add(target.Candidate{Addr: a, Region: v6class.PrefixFrom(a, 116), Score: -3.17}.Encode())
	f.Add(target.Candidate{Addr: a, Region: v6class.PrefixFrom(a, 64)}.Encode())
	f.Add("")
	f.Add("2001:db8::1 2001:db8::/64")
	f.Add("not-an-addr also-not 0000000000000000")
	f.Add("2001:db8::1 2001:db8::/64 xyz")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := target.DecodeCandidate(s)
		if err != nil {
			return
		}
		again, err := target.DecodeCandidate(c.Encode())
		if err != nil {
			t.Fatalf("re-decoding %q (from %q): %v", c.Encode(), s, err)
		}
		if again != c {
			t.Fatalf("round trip changed candidate: %+v vs %+v", again, c)
		}
	})
}
