package target_test

import (
	"context"
	"errors"
	"iter"
	"slices"
	"sync/atomic"
	"testing"

	"v6class"
	"v6class/target"
)

func candidateSeq(addrs ...string) iter.Seq[target.Candidate] {
	return func(yield func(target.Candidate) bool) {
		for _, s := range addrs {
			a := v6class.MustParseAddr(s)
			if !yield(target.Candidate{Addr: a, Region: v6class.PrefixFrom(a, 64)}) {
				return
			}
		}
	}
}

// setProber answers for a fixed address set; safe under any concurrency.
func setProber(addrs ...string) target.Prober {
	m := make(map[v6class.Addr]bool)
	for _, s := range addrs {
		m[v6class.MustParseAddr(s)] = true
	}
	return target.ProberFunc(func(_ context.Context, a v6class.Addr) (bool, error) {
		return m[a], nil
	})
}

func TestScanPool(t *testing.T) {
	cands := candidateSeq(
		"2001:db8::1", "2001:db8::2", "2001:db8::3", "2001:db8::4",
		"2001:db8:1::1", "2001:db8:1::2", "2001:db8:1::3", "2001:db8:1::4",
	)
	pr := setProber("2001:db8::2", "2001:db8:1::3", "2001:db8:1::1")
	want := []string{"2001:db8::2", "2001:db8:1::1", "2001:db8:1::3"}

	for _, workers := range []int{1, 4, 16} {
		res, err := target.Scan(context.Background(), pr, cands, target.ScanConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Candidates != 8 || res.Probes != 8 {
			t.Errorf("workers=%d: candidates=%d probes=%d, want 8/8", workers, res.Candidates, res.Probes)
		}
		var got []string
		for _, a := range res.Hits {
			got = append(got, a.String())
		}
		if !slices.Equal(got, want) {
			t.Errorf("workers=%d: hits = %v, want %v", workers, got, want)
		}
		if r := res.HitRate(); r != 3.0/8 {
			t.Errorf("workers=%d: hit rate = %v, want 0.375", workers, r)
		}
	}
}

func TestScanRateLimit(t *testing.T) {
	cands := candidateSeq("2001:db8::1", "2001:db8::2", "2001:db8::3")
	res, err := target.Scan(context.Background(), setProber(), cands,
		target.ScanConfig{Workers: 2, Rate: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes != 3 {
		t.Fatalf("probes = %d, want 3", res.Probes)
	}
}

func TestScanProberErrorAborts(t *testing.T) {
	boom := errors.New("probe failed")
	var n atomic.Int64
	pr := target.ProberFunc(func(_ context.Context, a v6class.Addr) (bool, error) {
		if n.Add(1) >= 3 {
			return false, boom
		}
		return false, nil
	})
	_, err := target.Scan(context.Background(), pr, candidateSeq(
		"2001:db8::1", "2001:db8::2", "2001:db8::3", "2001:db8::4", "2001:db8::5",
	), target.ScanConfig{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestScanContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	pr := target.ProberFunc(func(_ context.Context, a v6class.Addr) (bool, error) {
		if n.Add(1) == 2 {
			cancel()
		}
		return false, nil
	})
	endless := func(yield func(target.Candidate) bool) {
		a := v6class.MustParseAddr("2001:db8::")
		for {
			a = a.Next()
			if !yield(target.Candidate{Addr: a}) {
				return
			}
		}
	}
	_, err := target.Scan(ctx, pr, endless, target.ScanConfig{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScanDetectsAliasedPrefix(t *testing.T) {
	// Everything under one /64 answers (an aliased delegation); one real
	// host elsewhere.
	aliased := v6class.MustParsePrefix("2001:db8:0:bad::/64")
	real := v6class.MustParseAddr("2001:db8:0:1::7")
	pr := target.ProberFunc(func(_ context.Context, a v6class.Addr) (bool, error) {
		return aliased.Contains(a) || a == real, nil
	})
	det := target.NewAliasDetector(target.AliasConfig{K: 4, Trigger: 2, Cooldown: 4, Seed: 3})
	cands := candidateSeq(
		"2001:db8:0:bad::1", "2001:db8:0:bad::2", "2001:db8:0:bad::3",
		"2001:db8:0:1::7", "2001:db8:0:1::8",
	)
	res, err := target.Scan(context.Background(), pr, cands,
		target.ScanConfig{Workers: 4, Detector: det, Round: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NewAliased) != 1 || res.NewAliased[0] != aliased {
		t.Fatalf("NewAliased = %v, want [%v]", res.NewAliased, aliased)
	}
	if len(res.Hits) != 1 || res.Hits[0] != real {
		t.Fatalf("hits = %v, want [%v] (phantom hits filtered)", res.Hits, real)
	}
	if res.AliasChecks != 1 {
		t.Errorf("alias checks = %d, want 1", res.AliasChecks)
	}
	// A later scan under cooldown suppresses the aliased prefix up front.
	res2, err := target.Scan(context.Background(), pr, cands,
		target.ScanConfig{Workers: 4, Detector: det, Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Suppressed != 3 {
		t.Errorf("suppressed = %d, want 3", res2.Suppressed)
	}
	if len(res2.Hits) != 1 || res2.Hits[0] != real {
		t.Errorf("hits = %v, want [%v]", res2.Hits, real)
	}
}

func TestHitsToLog(t *testing.T) {
	hits := []v6class.Addr{v6class.MustParseAddr("2001:db8::1"), v6class.MustParseAddr("2001:db8::2")}
	log := target.HitsToLog(5, hits)
	if log.Day != 5 || len(log.Records) != 2 {
		t.Fatalf("log = %+v", log)
	}
	for i, r := range log.Records {
		if r.Addr != hits[i] || r.Hits != 1 {
			t.Errorf("record %d = %+v", i, r)
		}
	}
}
