package target

import (
	"context"
	"encoding/binary"
	"iter"
	"sort"
	"sync"

	"v6class"
)

// AliasConfig tunes the alias detector. The zero value is usable: every
// field has a documented default.
type AliasConfig struct {
	// K is the number of pseudorandom probes a check issues; all must
	// answer to call the prefix aliased. Default 16.
	K int
	// Bits is the prefix length checked, clamped to [64, 96]. Default 64:
	// residential delegations alias at the /64.
	Bits int
	// Trigger is the scan-hit count under one checked prefix that fires a
	// check. Default 4.
	Trigger int
	// Cooldown is how many rounds a detection suppresses generation under
	// the prefix, and how long a failed check blocks re-checking. Default
	// 8.
	Cooldown int
	// Seed derives the check probes; a fixed seed makes every check's
	// probe set a pure function of the prefix.
	Seed uint64
}

func (c AliasConfig) withDefaults() AliasConfig {
	if c.K <= 0 {
		c.K = 16
	}
	if c.Bits < 64 {
		c.Bits = 64
	}
	if c.Bits > 96 {
		c.Bits = 96
	}
	if c.Trigger <= 0 {
		c.Trigger = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	return c
}

// AliasDetector flags aliased prefixes — delegations where some middlebox
// answers for every address, which would otherwise flood the census with
// phantom "active" addresses — and remembers them across rounds with a
// cooldown. Safe for concurrent use by scan workers.
type AliasDetector struct {
	cfg AliasConfig

	mu      sync.Mutex
	aliased map[v6class.Prefix]int // prefix -> round detected
	checked map[v6class.Prefix]int // prefix -> round last checked
}

// NewAliasDetector returns a detector with cfg's defaults applied.
func NewAliasDetector(cfg AliasConfig) *AliasDetector {
	return &AliasDetector{
		cfg:     cfg.withDefaults(),
		aliased: make(map[v6class.Prefix]int),
		checked: make(map[v6class.Prefix]int),
	}
}

// Config returns the detector's effective (defaulted) configuration.
func (d *AliasDetector) Config() AliasConfig { return d.cfg }

// CheckPrefix returns the checked-length prefix of a — the granularity
// tallies and detections operate at.
func (d *AliasDetector) CheckPrefix(a v6class.Addr) v6class.Prefix {
	return v6class.PrefixFrom(a, d.cfg.Bits)
}

// ProbeAddrs returns the K pseudorandom check probes under p. The set is
// a pure function of (Seed, p): deterministic across runs and workers.
func (d *AliasDetector) ProbeAddrs(p v6class.Prefix) []v6class.Addr {
	host := 128 - p.Bits()
	base := p.First()
	state := splitmix64(d.cfg.Seed ^ addrHash(0x616c696173, base) ^ uint64(p.Bits()))
	out := make([]v6class.Addr, 0, d.cfg.K)
	seen := make(map[v6class.Addr]bool, d.cfg.K)
	for len(out) < d.cfg.K {
		state = splitmix64(state)
		hi, lo := base.NetworkID(), base.IID()
		r := state
		switch {
		case host >= 64:
			lo = r
			if host > 64 {
				state = splitmix64(state)
				hi |= state & (1<<uint(host-64) - 1)
			}
		case host > 0:
			lo |= r & (1<<uint(host) - 1)
		}
		var b [16]byte
		binary.BigEndian.PutUint64(b[:8], hi)
		binary.BigEndian.PutUint64(b[8:], lo)
		a := v6class.AddrFrom16(b)
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Check runs the alias test for the checked prefix containing addr, in
// the given round: K pseudorandom probes under the prefix, aliased iff
// all answer. Detections and failed checks are both remembered — a
// failed check is not repeated until Cooldown rounds pass, a detection
// suppresses the prefix (see Suppress) for Cooldown rounds. Returns
// whether the prefix is (now) considered aliased.
func (d *AliasDetector) Check(ctx context.Context, pr Prober, addr v6class.Addr, round int) (bool, error) {
	p := d.CheckPrefix(addr)
	d.mu.Lock()
	if det, ok := d.aliased[p]; ok && round-det < d.cfg.Cooldown {
		d.mu.Unlock()
		return true, nil
	}
	if last, ok := d.checked[p]; ok && round-last < d.cfg.Cooldown {
		d.mu.Unlock()
		return false, nil
	}
	d.checked[p] = round
	d.mu.Unlock()

	all := true
	for _, a := range d.ProbeAddrs(p) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		hit, err := pr.Probe(ctx, a)
		if err != nil {
			return false, err
		}
		if !hit {
			all = false
			break
		}
	}
	if all {
		d.mu.Lock()
		d.aliased[p] = round
		d.mu.Unlock()
	}
	return all, nil
}

// Suppress reports whether candidate generation under a should be
// suppressed in the given round: a detection within Cooldown covers it.
// It has the WithSuppress shape once the round is bound:
//
//	WithSuppress(func(a v6class.Addr) bool { return det.Suppress(a, round) })
func (d *AliasDetector) Suppress(a v6class.Addr, round int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for p, det := range d.aliased {
		if round-det < d.cfg.Cooldown && p.Contains(a) {
			return true
		}
	}
	return false
}

// SuppressSnapshot returns a suppression predicate over the detector's
// state as of the call: the prefixes whose detection is within Cooldown
// of round, copied out under the lock. The predicate itself reads no
// shared state, so — unlike a closure over Suppress — its answers cannot
// change when scan workers detect new prefixes mid-round. Loop uses it
// to keep each round's candidate stream a pure function of the state at
// round start (mid-round detections are suppressed by the scan's own
// live check instead).
func (d *AliasDetector) SuppressSnapshot(round int) func(v6class.Addr) bool {
	d.mu.Lock()
	var cover []v6class.Prefix
	for p, det := range d.aliased {
		if round-det < d.cfg.Cooldown {
			cover = append(cover, p)
		}
	}
	d.mu.Unlock()
	return func(a v6class.Addr) bool {
		for _, p := range cover {
			if p.Contains(a) {
				return true
			}
		}
		return false
	}
}

// Aliased enumerates every detected prefix in ascending order with the
// round it was detected — the façade-style enumeration ingest uses to
// collapse aliased delegations. The Seq is re-iterable; it snapshots the
// detector at call time of each iteration.
func (d *AliasDetector) Aliased() iter.Seq2[v6class.Prefix, int] {
	return func(yield func(v6class.Prefix, int) bool) {
		d.mu.Lock()
		type det struct {
			p     v6class.Prefix
			round int
		}
		all := make([]det, 0, len(d.aliased))
		for p, r := range d.aliased {
			all = append(all, det{p, r})
		}
		d.mu.Unlock()
		sort.Slice(all, func(i, j int) bool { return all[i].p.Cmp(all[j].p) < 0 })
		for _, a := range all {
			if !yield(a.p, a.round) {
				return
			}
		}
	}
}

// CollapseAliased rewrites daily logs so each aliased prefix contributes
// a single representative record (the prefix's first address, hits
// summed) instead of its phantom per-address records — the optional
// ingest-side collapse. Records are otherwise preserved in order; the
// representative sits at the first collapsed record's position.
func (d *AliasDetector) CollapseAliased(logs []v6class.DayLog) []v6class.DayLog {
	d.mu.Lock()
	prefixes := make([]v6class.Prefix, 0, len(d.aliased))
	for p := range d.aliased {
		prefixes = append(prefixes, p)
	}
	d.mu.Unlock()
	if len(prefixes) == 0 {
		return logs
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Cmp(prefixes[j]) < 0 })
	covering := func(a v6class.Addr) (v6class.Prefix, bool) {
		for _, p := range prefixes {
			if p.Contains(a) {
				return p, true
			}
		}
		return v6class.Prefix{}, false
	}
	out := make([]v6class.DayLog, len(logs))
	for i, day := range logs {
		rewritten := v6class.DayLog{Day: day.Day, Records: make([]v6class.Record, 0, len(day.Records))}
		rep := make(map[v6class.Prefix]int) // prefix -> index in rewritten
		for _, rec := range day.Records {
			if p, ok := covering(rec.Addr); ok {
				if j, seen := rep[p]; seen {
					rewritten.Records[j].Hits += rec.Hits
				} else {
					rep[p] = len(rewritten.Records)
					rewritten.Records = append(rewritten.Records, v6class.Record{Addr: p.First(), Hits: rec.Hits})
				}
				continue
			}
			rewritten.Records = append(rewritten.Records, rec)
		}
		out[i] = rewritten
	}
	return out
}
